"""Integration tests for the engine facade: the full read/write/delete paths."""

import random

import pytest

from repro.core.config import MergePolicy, lethe_config, rocksdb_config
from repro.core.engine import LSMEngine

from tests.conftest import TINY


class TestBasicKV:
    def test_put_get(self, baseline_engine):
        baseline_engine.put(1, "one")
        assert baseline_engine.get(1) == "one"

    def test_get_absent(self, baseline_engine):
        assert baseline_engine.get(42) is None
        assert baseline_engine.stats.zero_result_lookups == 1

    def test_update_wins(self, baseline_engine):
        baseline_engine.put(1, "old")
        baseline_engine.put(1, "new")
        assert baseline_engine.get(1) == "new"

    def test_survives_flush(self, baseline_engine):
        for key in range(50):
            baseline_engine.put(key, f"v{key}")
        baseline_engine.flush()
        assert baseline_engine.get(17) == "v17"
        assert baseline_engine.stats.buffer_flushes >= 1

    def test_update_across_flush(self, baseline_engine):
        baseline_engine.put(1, "old")
        baseline_engine.flush()
        baseline_engine.put(1, "new")
        assert baseline_engine.get(1) == "new"
        baseline_engine.flush()
        assert baseline_engine.get(1) == "new"

    def test_many_entries_trigger_compactions(self, baseline_engine):
        for key in range(600):
            baseline_engine.put(key, f"v{key}")
        assert baseline_engine.stats.compactions > 0
        rng = random.Random(3)
        for _ in range(50):
            key = rng.randrange(600)
            assert baseline_engine.get(key) == f"v{key}"


class TestPointDeletes:
    def test_delete_hides_key(self, baseline_engine):
        baseline_engine.put(1, "one")
        assert baseline_engine.delete(1)
        assert baseline_engine.get(1) is None

    def test_delete_across_flush(self, baseline_engine):
        baseline_engine.put(1, "one")
        baseline_engine.flush()
        baseline_engine.delete(1)
        assert baseline_engine.get(1) is None
        baseline_engine.flush()
        assert baseline_engine.get(1) is None

    def test_reinsert_after_delete(self, baseline_engine):
        baseline_engine.put(1, "one")
        baseline_engine.delete(1)
        baseline_engine.put(1, "again")
        assert baseline_engine.get(1) == "again"

    def test_blind_delete_skipped(self, baseline_engine):
        assert baseline_engine.config.avoid_blind_deletes
        assert not baseline_engine.delete(12345)
        assert baseline_engine.stats.blind_deletes_skipped == 1
        assert baseline_engine.stats.point_tombstones_ingested == 0

    def test_blind_delete_allowed_when_disabled(self):
        engine = LSMEngine(rocksdb_config(avoid_blind_deletes=False, **TINY))
        assert engine.delete(12345)
        assert engine.stats.point_tombstones_ingested == 1

    def test_delete_after_flush_not_blind(self, baseline_engine):
        baseline_engine.put(9, "nine")
        baseline_engine.flush()
        assert baseline_engine.delete(9)


class TestRangeDeletes:
    def test_range_delete_hides_covered_keys(self, baseline_engine):
        for key in range(20):
            baseline_engine.put(key, f"v{key}")
        baseline_engine.range_delete(5, 15)
        for key in range(20):
            expected = None if 5 <= key < 15 else f"v{key}"
            assert baseline_engine.get(key) == expected

    def test_range_delete_across_flush(self, baseline_engine):
        for key in range(20):
            baseline_engine.put(key, f"v{key}")
        baseline_engine.flush()
        baseline_engine.range_delete(5, 15)
        baseline_engine.flush()
        assert baseline_engine.get(7) is None
        assert baseline_engine.get(16) == "v16"

    def test_put_after_range_delete_wins(self, baseline_engine):
        baseline_engine.put(7, "old")
        baseline_engine.range_delete(0, 100)
        baseline_engine.put(7, "new")
        assert baseline_engine.get(7) == "new"

    def test_scan_respects_range_delete(self, baseline_engine):
        for key in range(10):
            baseline_engine.put(key, f"v{key}")
        baseline_engine.flush()
        baseline_engine.range_delete(2, 6)
        keys = [k for k, _ in baseline_engine.scan(0, 9)]
        assert keys == [0, 1, 6, 7, 8, 9]


class TestScan:
    def test_scan_merges_buffer_and_disk(self, baseline_engine):
        baseline_engine.put(1, "disk")
        baseline_engine.flush()
        baseline_engine.put(2, "buffer")
        assert baseline_engine.scan(0, 10) == [(1, "disk"), (2, "buffer")]

    def test_scan_returns_newest_version(self, baseline_engine):
        baseline_engine.put(1, "old")
        baseline_engine.flush()
        baseline_engine.put(1, "new")
        assert baseline_engine.scan(0, 10) == [(1, "new")]

    def test_scan_empty_range(self, baseline_engine):
        baseline_engine.put(1, "x")
        assert baseline_engine.scan(100, 200) == []


class TestSecondaryRangeDelete:
    def _load(self, engine, n=64):
        for key in range(n):
            engine.put(key, f"v{key}", delete_key=key * 10)
        engine.flush()

    def test_kiwi_path_drops_matching(self, kiwi_engine):
        self._load(kiwi_engine)
        report = kiwi_engine.secondary_range_delete(100, 300)
        assert report.entries_dropped > 0
        for key in range(64):
            expected = None if 100 <= key * 10 < 300 else f"v{key}"
            assert kiwi_engine.get(key) == expected

    def test_kiwi_path_uses_page_drops_not_full_compaction(self, kiwi_engine):
        self._load(kiwi_engine)
        before = kiwi_engine.stats.full_tree_compactions
        kiwi_engine.secondary_range_delete(100, 300)
        assert kiwi_engine.stats.full_tree_compactions == before

    def test_classic_path_full_compaction(self, baseline_engine):
        self._load(baseline_engine)
        report = baseline_engine.secondary_range_delete(100, 300)
        assert baseline_engine.stats.full_tree_compactions == 1
        for key in range(64):
            expected = None if 100 <= key * 10 < 300 else f"v{key}"
            assert baseline_engine.get(key) == expected
        # the classic path reads and rewrites the whole tree
        assert report.pages_read > 0 and report.pages_written > 0

    def test_buffer_entries_also_purged(self, kiwi_engine):
        kiwi_engine.put(1, "one", delete_key=100)  # stays in buffer
        kiwi_engine.secondary_range_delete(50, 150)
        assert kiwi_engine.get(1) is None

    def test_secondary_range_lookup_kiwi(self, kiwi_engine):
        self._load(kiwi_engine)
        hits = kiwi_engine.secondary_range_lookup(100, 300)
        assert sorted(k for k, _ in hits) == list(range(10, 30))

    def test_secondary_range_lookup_classic(self, baseline_engine):
        self._load(baseline_engine)
        hits = baseline_engine.secondary_range_lookup(100, 300)
        assert sorted(k for k, _ in hits) == list(range(10, 30))

    def test_secondary_lookup_skips_stale_versions(self, kiwi_engine):
        kiwi_engine.put(1, "old", delete_key=100)
        kiwi_engine.flush()
        kiwi_engine.put(1, "new", delete_key=9999)  # moved out of range
        hits = kiwi_engine.secondary_range_lookup(50, 150)
        assert hits == []

    def test_purging_newest_buffered_version_does_not_resurrect(
        self, kiwi_engine
    ):
        """Page drops purge by delete key, not recency: when the newest
        version of a key dies, an older on-disk version whose delete key
        lies *outside* the range must not resurface."""
        kiwi_engine.put(5, "old", delete_key=1000)  # out of delete range
        kiwi_engine.flush()
        kiwi_engine.put(5, "new", delete_key=10)  # newest, in range
        kiwi_engine.secondary_range_delete(0, 50)
        assert kiwi_engine.get(5) is None
        assert kiwi_engine.scan(0, 10) == []
        assert kiwi_engine.secondary_range_lookup(0, 2000) == []

    def test_purging_newest_on_disk_version_does_not_resurrect(
        self, kiwi_engine
    ):
        """Same shadow problem with both versions on disk in different
        runs: the tile drop removes the newer version only."""
        for key in range(64):
            kiwi_engine.put(key, f"a{key}", delete_key=1000 + key)
        kiwi_engine.flush()
        kiwi_engine.force_full_compaction()
        for key in range(10):
            kiwi_engine.put(key, f"b{key}", delete_key=key)
        kiwi_engine.flush()
        kiwi_engine.secondary_range_delete(0, 100)
        for key in range(10):
            assert kiwi_engine.get(key) is None, key
        for key in range(10, 64):
            assert kiwi_engine.get(key) == f"a{key}"

    def test_old_invalid_versions_drop_without_tombstoning_survivors(
        self, kiwi_engine
    ):
        """Dropping a *stale* version whose newer version survives (delete
        key out of range) must leave the newer version readable."""
        kiwi_engine.put(3, "old", delete_key=10)  # in range, but stale
        kiwi_engine.flush()
        kiwi_engine.put(3, "new", delete_key=1000)  # newest, out of range
        kiwi_engine.flush()
        kiwi_engine.secondary_range_delete(0, 50)
        assert kiwi_engine.get(3) == "new"


class TestPersistenceTracking:
    def test_records_opened_and_closed(self, lethe_engine):
        lethe_engine.put(1, "one")
        lethe_engine.delete(1)
        assert lethe_engine.stats.unpersisted_count() == 1
        lethe_engine.flush()
        lethe_engine.advance_time(2.0)
        assert lethe_engine.stats.unpersisted_count() == 0
        assert lethe_engine.stats.max_persistence_latency() is not None

    def test_overwritten_buffer_tombstone_nullified(self, lethe_engine):
        lethe_engine.put(1, "one")
        lethe_engine.delete(1)
        lethe_engine.put(1, "back")
        assert lethe_engine.stats.unpersisted_count() == 0

    def test_force_full_compaction_persists_everything(self, baseline_engine):
        baseline_engine.config  # baseline has no FADE: forced persistence
        baseline_engine.put(1, "one")
        baseline_engine.put(2, "two")
        baseline_engine.delete(1)
        baseline_engine.force_full_compaction()
        assert baseline_engine.tombstones_on_disk() == 0
        assert baseline_engine.get(2) == "two"


class TestWALIntegration:
    def test_wal_tracks_and_purges(self, baseline_engine):
        for key in range(40):
            baseline_engine.put(key, "x")
        # flushes advanced the watermark; most segments purged
        assert baseline_engine.wal.segments_purged >= 0
        assert baseline_engine.wal.live_records <= 40

    def test_fade_wal_dth_enforced(self, lethe_engine):
        lethe_engine.put(1, "x")
        lethe_engine.delete(1)
        for key in range(100, 160):
            lethe_engine.put(key, "y")
        d_th = lethe_engine.config.delete_persistence_threshold
        assert lethe_engine.wal.oldest_segment_age(lethe_engine.clock.now) <= d_th


class TestTieredEngine:
    def test_tiered_round_trip(self):
        engine = LSMEngine(
            rocksdb_config(**{**TINY, "merge_policy": MergePolicy.TIERING})
        )
        for key in range(400):
            engine.put(key, f"v{key}")
        rng = random.Random(5)
        for _ in range(40):
            key = rng.randrange(400)
            assert engine.get(key) == f"v{key}"

    def test_tiered_deletes(self):
        engine = LSMEngine(
            rocksdb_config(**{**TINY, "merge_policy": MergePolicy.TIERING})
        )
        for key in range(200):
            engine.put(key, f"v{key}")
        for key in range(0, 200, 4):
            engine.delete(key)
        for key in range(200):
            expected = None if key % 4 == 0 else f"v{key}"
            assert engine.get(key) == expected


class TestIngestDispatch:
    def test_dispatch_all_ops(self, kiwi_engine):
        kiwi_engine.ingest(
            [
                ("put", 1, "one", 10),
                ("put", 2, "two", 20),
                ("delete", 1),
                ("get", 2),
                ("scan", 0, 5),
                ("range_delete", 90, 95),
                ("secondary_range_delete", 15, 25),
            ]
        )
        assert kiwi_engine.get(1) is None
        assert kiwi_engine.get(2) is None  # removed by secondary delete

    def test_dispatch_shard_aware_ops(self, kiwi_engine):
        """The router's full vocabulary dispatches through one engine too."""
        kiwi_engine.ingest(
            [
                ("put", 1, "one", 10),
                ("flush",),
                ("secondary_range_lookup", 5, 15),
                ("advance_time", 0.5),
            ]
        )
        assert kiwi_engine.stats.buffer_flushes >= 1
        assert kiwi_engine.stats.secondary_range_lookups == 1
        assert kiwi_engine.get(1) == "one"

    def test_unknown_op_rejected(self, baseline_engine):
        from repro.core.errors import LetheError

        with pytest.raises(LetheError, match="unknown operation 'frobnicate'"):
            baseline_engine.ingest([("frobnicate", 1)])

    def test_unknown_op_error_names_vocabulary(self, baseline_engine):
        from repro.core.errors import LetheError

        with pytest.raises(LetheError, match="secondary_range_lookup"):
            baseline_engine.ingest([("nope",)])


class TestMetrics:
    def test_space_amp_counts_stale_versions(self, baseline_engine):
        for key in range(32):
            baseline_engine.put(key, "a")
        baseline_engine.flush()
        for key in range(32):
            baseline_engine.put(key, "b")
        baseline_engine.flush()
        assert baseline_engine.space_amplification() >= 0.0

    def test_write_amplification_grows_with_compaction(self, baseline_engine):
        for key in range(600):
            baseline_engine.put(key, f"v{key}")
        assert baseline_engine.write_amplification() > 0.0

    def test_describe_runs(self, baseline_engine):
        baseline_engine.put(1, "x")
        text = baseline_engine.describe()
        assert "LSMEngine" in text
