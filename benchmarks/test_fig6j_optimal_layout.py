"""Bench for Fig 6J: choosing the optimal storage layout.

Paper shape: at a fixed secondary-range-delete : point-lookup frequency
ratio, the I/O-optimal tile size h grows with the delete's selectivity
(h = 1 optimal at 1% selectivity; h = 8 at 5% in the paper's setup).
"""

from repro.bench import experiments as ex

from benchmarks.conftest import KIWI_BENCH_SCALE, emit


def test_fig6j_optimal_layout(benchmark):
    result = benchmark.pedantic(
        lambda: ex.fig6j_optimal_layout(
            KIWI_BENCH_SCALE,
            h_values=(1, 2, 4, 8, 16, 32),
            selectivities=(0.01, 0.02, 0.03, 0.04, 0.05),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    optima = result.series["optimal_h"]
    assert optima[0] <= optima[-1], "optimal h must not shrink with selectivity"
