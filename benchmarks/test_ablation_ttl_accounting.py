"""Ablation: FADE TTL accounting — cumulative amax vs level-arrival age.

The paper's Figure 4 pseudocode compares a file's oldest-tombstone age
against the *cumulative* per-level deadline (our default). §4.1.3's
remark that "amax is recalculated based on the time of the latest
compaction" suggests an alternative that restarts the clock at each level.

The ablation shows the trade: the arrival variant compacts less eagerly
(lower write overhead, fewer compactions) but, because ordinary rewrites
also reset the clock, it retains more tombstones and its worst-case
persistence latency creeps toward — and under adversarial rewrite
patterns past — D_th. The cumulative rule is the one that actually
enforces the guarantee.
"""

from repro.bench.harness import BENCH_SCALE, make_baseline, make_lethe, workload_for
from repro.bench.reporting import format_table


def run_variant(ingest_ops, runtime, arrival: bool):
    engine = make_lethe(
        BENCH_SCALE, d_th=0.05 * runtime, fade_ttl_from_level_arrival=arrival
    )
    engine.ingest(ingest_ops)
    latencies = engine.stats.persisted_latencies()
    return {
        "bytes": engine.stats.total_bytes_written,
        "compactions": engine.stats.compactions,
        "tombstones": engine.tombstones_on_disk(),
        "max_latency": max(latencies) if latencies else 0.0,
    }


def test_ablation_ttl_accounting(benchmark):
    def run():
        ingest_ops, _q, runtime = workload_for(
            BENCH_SCALE, delete_fraction=0.10, num_point_lookups=0
        )
        baseline = make_baseline(BENCH_SCALE)
        baseline.ingest(ingest_ops)
        base_bytes = baseline.stats.total_bytes_written
        cumulative = run_variant(ingest_ops, runtime, arrival=False)
        arrival = run_variant(ingest_ops, runtime, arrival=True)
        return runtime, base_bytes, cumulative, arrival

    runtime, base_bytes, cumulative, arrival = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    d_th = 0.05 * runtime
    rows = [
        ["cumulative (paper Fig 4)", f"{cumulative['bytes']/base_bytes:.3f}",
         cumulative["compactions"], cumulative["tombstones"],
         f"{cumulative['max_latency']:.2f}"],
        ["level-arrival (variant)", f"{arrival['bytes']/base_bytes:.3f}",
         arrival["compactions"], arrival["tombstones"],
         f"{arrival['max_latency']:.2f}"],
    ]
    print("\n" + format_table(
        ["TTL accounting", "bytes vs baseline", "compactions",
         "tombstones on disk", "max persist latency (s)"],
        rows,
        title=f"Ablation: TTL accounting (D_th = {d_th:.2f}s)",
    ) + "\n")
    # The eager rule persists everything it should; the lazy variant
    # retains at least as many tombstones.
    assert cumulative["tombstones"] <= arrival["tombstones"]
    assert cumulative["max_latency"] <= d_th * 1.3
