"""The sharded engine: N Lethe engines behind one keyspace-partitioned API.

:class:`ShardedEngine` exposes the complete :class:`~repro.core.engine.
LSMEngine` surface — ``put``/``delete``/``range_delete``/
``secondary_range_delete``/``get``/``scan``/``secondary_range_lookup``/
``flush``/``advance_time``/``ingest`` — over a cluster of member engines:

* **point operations** route to the single owning shard;
* **sort-key range operations** fan out to the overlapping shards only
  (all shards under hash partitioning) and k-way-merge the results;
* **secondary (delete-key) operations** are scatter-gather: the secondary
  key is not the partition key, so every shard participates and the
  per-shard :class:`SecondaryDeleteReport`s sum into the cluster bill —
  exactly the cost the paper's model predicts per tree, times the fan-out.

All members share one :class:`~repro.core.clock.SimulatedClock`, so FADE
TTLs and persistence latencies stay on a single cluster-wide timeline;
per-shard *configs* may still differ (per-tenant ``D_th`` or KiWi ``h``).
Range-partitioned clusters additionally support :meth:`split` (divide a
hot shard at a key) and :meth:`rebalance` (recut all split points at the
observed key quantiles).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.clock import SimulatedClock
from repro.core.config import EngineConfig
from repro.core.engine import LSMEngine
from repro.core.errors import ConfigError, LetheError
from repro.core.stats import Statistics
from repro.kiwi.range_delete import SecondaryDeleteReport
from repro.shard.merge import combine_reports, kway_merge
from repro.shard.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.shard.router import Barrier, OperationRouter, ShardBatch
from repro.storage.entry import Entry


class ShardedEngine:
    """A partitioned cluster of LSM engines with a single-engine API.

    Parameters
    ----------
    config:
        Configuration applied to every shard (unless ``shard_configs``
        overrides it per shard).
    n_shards:
        Convenience: build a :class:`HashPartitioner` of this size.
        Mutually exclusive with ``partitioner``.
    partitioner:
        Explicit placement policy (hash or range).
    shard_configs:
        Optional per-shard configs (length must equal the shard count) —
        the tunability axis: each partition may run its own FADE
        ``D_th``/KiWi ``h``.
    clock:
        Optional externally-owned clock shared with other engines under
        comparison.
    """

    def __init__(
        self,
        config: EngineConfig,
        n_shards: int | None = None,
        partitioner: Partitioner | None = None,
        shard_configs: Sequence[EngineConfig] | None = None,
        clock: SimulatedClock | None = None,
        max_batch: int = 1024,
    ):
        if (n_shards is None) == (partitioner is None):
            raise ConfigError("pass exactly one of n_shards / partitioner")
        if partitioner is None:
            partitioner = HashPartitioner(n_shards)
        self.partitioner = partitioner
        self.config = config
        self.clock = clock or SimulatedClock(config.ingestion_rate)
        if shard_configs is None:
            configs = [config] * partitioner.n_shards
        else:
            configs = list(shard_configs)
            if len(configs) != partitioner.n_shards:
                raise ConfigError(
                    f"shard_configs has {len(configs)} entries for "
                    f"{partitioner.n_shards} shards"
                )
        self.shards: list[LSMEngine] = [
            LSMEngine(shard_config, clock=self.clock) for shard_config in configs
        ]
        self.router = OperationRouter(partitioner, max_batch=max_batch)
        # Counters of shards retired by split/rebalance, so cluster totals
        # never go backwards when members are replaced.
        self._retired_stats = Statistics()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    def shard_for(self, key: Any) -> LSMEngine:
        """The member engine owning ``key`` (for inspection/debugging)."""
        return self.shards[self.partitioner.shard_for(key)]

    # ------------------------------------------------------------------
    # Write path (routed)
    # ------------------------------------------------------------------

    def put(self, key: Any, value: Any = None, delete_key: Any = None) -> None:
        self.shard_for(key).put(key, value, delete_key=delete_key)

    def delete(self, key: Any) -> bool:
        return self.shard_for(key).delete(key)

    def range_delete(self, start: Any, end: Any) -> None:
        """Sort-key range delete ``[start, end)`` on every overlapping shard."""
        for index in self.partitioner.shards_for_range(start, end):
            self.shards[index].range_delete(start, end)

    def secondary_range_delete(self, d_lo: Any, d_hi: Any) -> SecondaryDeleteReport:
        """Scatter-gather delete on the secondary key: all shards, summed bill."""
        return combine_reports(
            shard.secondary_range_delete(d_lo, d_hi) for shard in self.shards
        )

    # ------------------------------------------------------------------
    # Read path (routed + merged)
    # ------------------------------------------------------------------

    def get(self, key: Any) -> Any:
        return self.shard_for(key).get(key)

    def scan(self, lo: Any, hi: Any) -> list[tuple[Any, Any]]:
        """Merged range lookup: k-way merge of the overlapping shards' scans."""
        indexes = self.partitioner.shards_for_range(lo, hi)
        if len(indexes) == 1:
            return self.shards[indexes[0]].scan(lo, hi)
        return kway_merge([self.shards[i].scan(lo, hi) for i in indexes])

    def secondary_range_lookup(self, d_lo: Any, d_hi: Any) -> list[tuple[Any, Any]]:
        """Scatter-gather lookup on the delete key, merged in sort-key order."""
        return kway_merge(
            [shard.secondary_range_lookup(d_lo, d_hi) for shard in self.shards]
        )

    # ------------------------------------------------------------------
    # Maintenance (broadcast)
    # ------------------------------------------------------------------

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def advance_time(self, seconds: float, check_interval: float | None = None) -> None:
        """Simulate idle time once, cluster-wide.

        The shared clock advances a single step at a time and every shard
        runs its TTL/compaction check at the same instant — advancing each
        member independently would multiply idle time by the shard count.
        """
        if check_interval is None:
            check_interval = min(
                shard.config.buffer_entries / shard.config.ingestion_rate
                for shard in self.shards
            )
        remaining = float(seconds)
        while remaining > 0:
            step = min(check_interval, remaining)
            remaining -= step
            self.clock.advance(step)
            for shard in self.shards:
                shard.idle_check()

    def force_full_compaction(self) -> None:
        for shard in self.shards:
            shard.force_full_compaction()

    # ------------------------------------------------------------------
    # Batched ingest
    # ------------------------------------------------------------------

    def ingest(self, operations: Iterable[tuple]) -> None:
        """Apply a workload stream, grouped per shard before dispatch.

        Point operations accumulate into per-shard batches (one
        :meth:`LSMEngine.ingest` call per batch); any multi-shard
        operation acts as a barrier that drains the batches first, so
        scatter-gather deletes and cross-shard scans observe every
        earlier write. Per-key operation order is always preserved.
        """
        barrier_dispatch = {
            "range_delete": self.range_delete,
            "scan": self.scan,
            "secondary_range_delete": self.secondary_range_delete,
            "secondary_range_lookup": self.secondary_range_lookup,
            "flush": self.flush,
            "advance_time": self.advance_time,
        }
        for item in self.router.batches(operations):
            if isinstance(item, ShardBatch):
                self.shards[item.shard].ingest(item.operations)
            elif isinstance(item, Barrier):
                name = item.operation[0]
                handler = barrier_dispatch.get(name)
                if handler is None:  # pragma: no cover - router rejects first
                    raise LetheError(f"unroutable barrier operation {name!r}")
                handler(*item.operation[1:])

    # ------------------------------------------------------------------
    # Resharding (range partitioning only)
    # ------------------------------------------------------------------

    def split(self, shard_index: int, split_key: Any) -> tuple[int, int]:
        """Divide shard ``shard_index`` at ``split_key`` into two shards.

        The retiring engine's live contents (newest version per key, via a
        full scan) migrate into two fresh engines; its counters fold into
        the cluster's retired-stats bucket so aggregate metrics stay
        monotone. Migration re-ingests entries through the normal write
        path — ticking the shared clock and paying flush I/O, as a real
        shard split pays its copy cost. Returns the two new shard indexes.
        """
        partitioner = self._require_range_partitioner("split")
        low, high = partitioner.shard_bounds(shard_index)
        if (low is not None and not low < split_key) or (
            high is not None and not split_key < high
        ):
            raise ConfigError(
                f"split key {split_key!r} outside shard {shard_index} "
                f"bounds [{low!r}, {high!r})"
            )
        retiring = self.shards[shard_index]
        survivors = _live_entries(retiring)
        self._retired_stats.merge(retiring.stats)

        left = LSMEngine(retiring.config, clock=self.clock)
        right = LSMEngine(retiring.config, clock=self.clock)
        self.partitioner = partitioner.with_split(split_key)
        self.router = OperationRouter(self.partitioner, max_batch=self.router.max_batch)
        self.shards[shard_index : shard_index + 1] = [left, right]
        for entry in survivors:
            target = left if entry.key < split_key else right
            target.put(entry.key, entry.value, delete_key=entry.delete_key)
        return shard_index, shard_index + 1

    def rebalance(self) -> list[Any]:
        """Recut every split point at the observed live-key quantiles.

        Collects all live entries, chooses balanced split points, rebuilds
        every member engine, and re-ingests — the heavyweight cluster-wide
        analogue of :meth:`split`. Returns the new split points.
        """
        self._require_range_partitioner("rebalance")
        survivors: list[Entry] = []
        for shard in self.shards:
            survivors.extend(_live_entries(shard))
        if len(set(e.key for e in survivors)) < self.n_shards:
            # Validate before retiring anything: the shards stay live on
            # this path, so folding their counters into the retired bucket
            # would double-count every cluster metric from here on.
            raise LetheError(
                f"cannot rebalance {self.n_shards} shards over "
                f"{len(survivors)} live keys"
            )
        for shard in self.shards:
            self._retired_stats.merge(shard.stats)
        configs = [shard.config for shard in self.shards]
        self.partitioner = RangePartitioner.from_keys(
            [entry.key for entry in survivors], self.n_shards
        )
        self.router = OperationRouter(self.partitioner, max_batch=self.router.max_batch)
        self.shards = [
            LSMEngine(shard_config, clock=self.clock) for shard_config in configs
        ]
        for entry in survivors:
            self.shard_for(entry.key).put(
                entry.key, entry.value, delete_key=entry.delete_key
            )
        return list(self.partitioner.split_points)

    def _require_range_partitioner(self, operation: str) -> RangePartitioner:
        if not isinstance(self.partitioner, RangePartitioner):
            raise ConfigError(
                f"{operation}() requires a RangePartitioner, cluster uses "
                f"{self.partitioner.describe()}"
            )
        return self.partitioner

    # ------------------------------------------------------------------
    # Cluster metrics
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Statistics:
        """Cluster-wide counters: live shards plus retired ones."""
        return Statistics.combined(
            [self._retired_stats] + [shard.stats for shard in self.shards]
        )

    def shard_stats(self) -> list[Statistics]:
        """Per-shard counter registries (live members only)."""
        return [shard.stats for shard in self.shards]

    def space_amplification(self) -> float:
        """Cluster ``samp``: summed over shards, not averaged — a bloated
        shard cannot hide behind an empty one (§3.2.1 applied to ΣN, ΣU)."""
        total = 0
        unique = 0
        for shard in self.shards:
            shard_total, shard_unique = shard.tree.live_unique_bytes(
                buffer_entries=list(shard.buffer),
                buffer_range_tombstones=list(shard.buffer.range_tombstones),
            )
            total += shard_total
            unique += shard_unique
        if unique == 0:
            return 0.0
        return (total - unique) / unique

    def write_amplification(self) -> float:
        combined = self.stats
        return combined.write_amplification(combined.bytes_flushed)

    def tombstones_on_disk(self) -> int:
        return sum(shard.tombstones_on_disk() for shard in self.shards)

    def shard_entry_counts(self) -> list[int]:
        """Physical entries per shard (tree + buffer) — the balance view."""
        return [
            shard.tree.total_entries + len(shard.buffer) for shard in self.shards
        ]

    def describe(self) -> str:
        lines = [
            f"ShardedEngine({self.partitioner.describe()}, "
            f"entries/shard={self.shard_entry_counts()})"
        ]
        for index, shard in enumerate(self.shards):
            lines.append(f"shard {index}: " + shard.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def _live_entries(engine: LSMEngine) -> list[Entry]:
    """Newest live version of every key in ``engine``, by full scan.

    Flushes first so the tree alone holds the truth; reads are not
    charged to the retiring engine (its accounting is frozen into the
    retired bucket) — the migration cost shows up as the new engines'
    flush/compaction work.
    """
    engine.flush()
    bounds = engine.key_bounds
    if bounds is None:
        return []
    low, high = bounds
    return engine.tree.scan(low, high, charge_io=False)
