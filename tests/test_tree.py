"""Unit tests for LSMTree: levels, lookups, and snapshot analytics."""

import pytest

from repro.core.config import rocksdb_config
from repro.core.stats import Statistics
from repro.lsm.sstable import build_sstable
from repro.lsm.tree import LSMTree
from repro.storage.disk import SimulatedDisk
from repro.storage.entry import EntryKind, RangeTombstone

from tests.conftest import TINY, make_entries


@pytest.fixture
def setup():
    stats = Statistics()
    disk = SimulatedDisk(stats)
    config = rocksdb_config(**TINY)
    tree = LSMTree(config, stats)
    return tree, config, disk, stats


def add_file(tree, config, disk, stats, level, keys, seq_start=0, rts=(),
             kind=EntryKind.PUT, write_time=0.0):
    table = build_sstable(
        make_entries(keys, seq_start=seq_start, kind=kind, write_time=write_time),
        list(rts), config, disk, stats, now=write_time, level=level,
    )
    tree.ensure_level(level).insert_into_run([table])
    return table


class TestLevels:
    def test_ensure_level_grows(self, setup):
        tree, config, *_ = setup
        tree.ensure_level(3)
        assert tree.height == 3
        assert tree.level(2).capacity_entries == config.level_capacity_entries(2)

    def test_deepest_nonempty(self, setup):
        tree, config, disk, stats = setup
        assert tree.deepest_nonempty_level() == 0
        add_file(tree, config, disk, stats, 2, range(10))
        tree.ensure_level(3)
        assert tree.deepest_nonempty_level() == 2

    def test_is_last_level(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, range(10))
        tree.ensure_level(3)
        assert tree.is_last_level(1)
        add_file(tree, config, disk, stats, 3, range(20, 30), seq_start=50)
        assert not tree.is_last_level(1)
        assert tree.is_last_level(3)


class TestLookup:
    def test_newest_level_wins(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 2, [5], seq_start=1)
        add_file(tree, config, disk, stats, 1, [5], seq_start=10)
        assert tree.lookup(5).seqnum == 10

    def test_descends_to_deeper_levels(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [1], seq_start=10)
        add_file(tree, config, disk, stats, 2, [5], seq_start=1)
        assert tree.lookup(5).seqnum == 1

    def test_absent_returns_none(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [1])
        assert tree.lookup(99) is None

    def test_tombstone_returned_as_entry(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [5], seq_start=10,
                 kind=EntryKind.TOMBSTONE)
        add_file(tree, config, disk, stats, 2, [5], seq_start=1)
        got = tree.lookup(5)
        assert got.is_tombstone and got.seqnum == 10

    def test_range_tombstone_hides_older_entry(self, setup):
        tree, config, disk, stats = setup
        rt = RangeTombstone(start=0, end=10, seqnum=50)
        add_file(tree, config, disk, stats, 1, [20], seq_start=60, rts=[rt])
        add_file(tree, config, disk, stats, 2, [5], seq_start=1)
        assert tree.lookup(5) is None

    def test_newer_put_survives_upper_range_tombstone(self, setup):
        tree, config, disk, stats = setup
        rt = RangeTombstone(start=0, end=10, seqnum=50)
        add_file(tree, config, disk, stats, 1, [20], seq_start=60, rts=[rt])
        add_file(tree, config, disk, stats, 2, [5], seq_start=55)
        assert tree.lookup(5).seqnum == 55

    def test_tiered_level_checks_newest_run_first(self, setup):
        tree, config, disk, stats = setup
        level = tree.ensure_level(1)
        old = build_sstable(make_entries([5], seq_start=1), [], config, disk,
                            stats, 0.0, 1)
        new = build_sstable(make_entries([5], seq_start=9), [], config, disk,
                            stats, 0.0, 1)
        level.add_run([old])
        level.add_run([new])
        assert tree.lookup(5).seqnum == 9


class TestScan:
    def test_merges_levels_and_dedups(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [1, 3], seq_start=10)
        add_file(tree, config, disk, stats, 2, [1, 2], seq_start=0)
        hits = tree.scan(0, 10)
        assert [(e.key, e.seqnum) for e in hits] == [(1, 10), (2, 1), (3, 11)]

    def test_tombstones_suppressed(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [2], seq_start=10,
                 kind=EntryKind.TOMBSTONE)
        add_file(tree, config, disk, stats, 2, [1, 2], seq_start=0)
        assert [e.key for e in tree.scan(0, 10)] == [1]

    def test_buffer_stream_injected(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [2], seq_start=0)
        buffered = make_entries([3], seq_start=90)
        hits = tree.scan(0, 10, extra_streams=[buffered])
        assert [e.key for e in hits] == [2, 3]


class TestAnalytics:
    def test_space_amplification_zero_for_unique(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, range(10))
        assert tree.space_amplification() == pytest.approx(0.0)

    def test_space_amplification_counts_duplicates(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, range(10), seq_start=100)
        add_file(tree, config, disk, stats, 2, range(10), seq_start=0)
        # ten stale versions of size 100 over ten live of size 100 → 1.0
        assert tree.space_amplification() == pytest.approx(1.0)

    def test_space_amplification_counts_tombstones(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [1, 2], seq_start=100,
                 kind=EntryKind.TOMBSTONE)
        add_file(tree, config, disk, stats, 2, [1, 2, 3], seq_start=0)
        total, unique = tree.live_unique_bytes()
        assert unique == 100  # only key 3 lives
        assert total == 300 + 22  # three puts + two 11-byte tombstones
        assert tree.space_amplification() == pytest.approx(222 / 100)

    def test_tombstone_age_distribution(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [1], seq_start=10,
                 kind=EntryKind.TOMBSTONE, write_time=4.0)
        add_file(tree, config, disk, stats, 2, [9], seq_start=5,
                 kind=EntryKind.TOMBSTONE, write_time=1.0)
        distribution = tree.tombstone_age_distribution(now=10.0)
        assert distribution == [(6.0, 1), (9.0, 1)]

    def test_max_tombstone_amax(self, setup):
        tree, config, disk, stats = setup
        add_file(tree, config, disk, stats, 1, [1], seq_start=10,
                 kind=EntryKind.TOMBSTONE, write_time=4.0)
        assert tree.max_tombstone_amax(now=10.0) == pytest.approx(6.0)
        assert tree.max_tombstone_amax(now=3.0) == 0.0  # clamped
