"""Operation routing and batched dispatch for the sharded engine.

The router turns one interleaved workload stream into per-shard batches
plus cluster-wide barriers, preserving exactly the ordering that matters:

* operations on the same shard keep their relative order (and since each
  key maps to one shard, per-key order is preserved);
* a multi-shard operation (scatter-gather delete, cross-shard scan,
  flush, advance_time) is a **barrier**: every buffered batch is emitted
  before it, so the fan-out observes all earlier writes.

Operations on *different* shards may reorder relative to each other —
their key sets are disjoint, so the final state is unaffected; this is
what buys the batching win (one dispatch per shard per batch window
instead of one per operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.errors import LetheError
from repro.shard.partitioner import Partitioner

# Vocabulary shared with LSMEngine.ingest. Values are the argument
# positions carrying sort keys: single-key ops route by one key, range
# ops by a key interval, broadcast ops by nothing at all.
POINT_OPS = {"put": 1, "delete": 1, "get": 1}
RANGE_OPS = {"range_delete": (1, 2), "delete_range": (1, 2), "scan": (1, 2)}
BROADCAST_OPS = frozenset(
    {"secondary_range_delete", "secondary_range_lookup", "flush", "advance_time"}
)
KNOWN_OPS = frozenset(POINT_OPS) | frozenset(RANGE_OPS) | BROADCAST_OPS


@dataclass
class ShardBatch:
    """A run of operations bound for one shard, in arrival order."""

    shard: int
    operations: list[tuple] = field(default_factory=list)


@dataclass
class Barrier:
    """A cluster-wide operation that must see all earlier writes."""

    operation: tuple


class OperationRouter:
    """Groups a workload stream per shard before dispatch.

    ``max_batch`` caps how many operations a single shard accumulates
    before its batch is emitted anyway, bounding the reorder window (and
    memory) for endless streams.
    """

    def __init__(self, partitioner: Partitioner, max_batch: int = 1024):
        if max_batch < 1:
            raise LetheError(f"max_batch must be >= 1, got {max_batch}")
        self.partitioner = partitioner
        self.max_batch = max_batch

    def shards_for(self, operation: tuple) -> tuple[int, ...]:
        """The shard set an operation must reach."""
        name = operation[0]
        if name in POINT_OPS:
            return (self.partitioner.shard_for(operation[POINT_OPS[name]]),)
        if name in RANGE_OPS:
            lo_at, hi_at = RANGE_OPS[name]
            return self.partitioner.shards_for_range(
                operation[lo_at], operation[hi_at]
            )
        if name in BROADCAST_OPS:
            return self.partitioner.all_shards()
        raise LetheError(
            f"unknown operation {name!r}; expected one of {sorted(KNOWN_OPS)}"
        )

    def batches(
        self, operations: Iterable[tuple]
    ) -> Iterator[ShardBatch | Barrier]:
        """Yield per-shard batches and barriers, honouring write order."""
        pending: dict[int, ShardBatch] = {}

        def drain() -> Iterator[ShardBatch]:
            for shard in sorted(pending):
                yield pending[shard]
            pending.clear()

        for operation in operations:
            targets = self.shards_for(operation)
            if len(targets) == 1:
                shard = targets[0]
                batch = pending.get(shard)
                if batch is None:
                    batch = pending[shard] = ShardBatch(shard)
                batch.operations.append(operation)
                if len(batch.operations) >= self.max_batch:
                    del pending[shard]
                    yield batch
            else:
                yield from drain()
                yield Barrier(operation)
        yield from drain()
