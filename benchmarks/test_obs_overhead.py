"""Overhead gate for the observability layer (ISSUE 6 acceptance).

The ``metrics`` experiment replays one delete-heavy stream against two
engines — observability off and on — in chunk-level lockstep, rotating
which mode each chunk times first and taking per-chunk minima across
replays, with GC collection paused. That estimator measures the
instrumentation cost itself (wrapper + histogram record, ~1µs/op,
measured ≈ 1–3% of a mean op) rather than machine noise (±7% on raw
wall clock in CI containers).

The gate: per-op histograms + span tracing on the ingest hot path must
cost **< 5%**. The read path is reported but not gated — the lookup
phase is tens of milliseconds, small enough that container noise
swamps a percent-level bound.
"""

from repro.bench import experiments as ex
from repro.bench.harness import ExperimentScale

from benchmarks.conftest import emit

# Compaction CPU grows superlinearly with volume and dilutes the per-op
# share being measured; this scale keeps ops cheap enough that a real
# instrumentation regression would register.
OBS_BENCH_SCALE = ExperimentScale(num_inserts=6000, num_point_lookups=900)

MAX_INGEST_OVERHEAD = 0.05


def test_observability_ingest_overhead_under_five_percent(benchmark):
    result = benchmark.pedantic(
        lambda: ex.metrics_experiment(OBS_BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    emit(result)
    series = result.series

    # Noise can only *inflate* an overhead measurement (a descheduled
    # chunk shows up as extra time on whichever mode held the clock), so
    # when a measurement exceeds the gate, re-measure and gate on the
    # minimum — a real regression fails every time, a noise spike
    # doesn't repeat.
    measured = [series["ingest_overhead"]]
    while min(measured) >= MAX_INGEST_OVERHEAD and len(measured) < 3:
        retry = ex.metrics_experiment(OBS_BENCH_SCALE)
        measured.append(retry.series["ingest_overhead"])

    assert min(measured) < MAX_INGEST_OVERHEAD, (
        f"observability costs {[f'{m:+.2%}' for m in measured]} on the "
        f"ingest hot path across {len(measured)} measurements "
        f"(gate {MAX_INGEST_OVERHEAD:.0%}); "
        f"off={series['ingest_wall_off_s']:.3f}s "
        f"on={series['ingest_wall_on_s']:.3f}s"
    )

    # The instrumented engine must actually have instrumented: every op
    # recorded, spans captured, exposition parseable.
    pcts = series["write_latency_percentiles_s"]
    assert pcts["p50"] > 0 and pcts["p999"] >= pcts["p50"]
    assert series["span_counts"].get("flush", 0) > 0, series["span_counts"]
    assert series["span_counts"].get("compaction", 0) > 0
    assert series["exposition_samples"] > 20
