"""Quickstart: a Lethe engine in five minutes.

Creates a Lethe engine (FADE + KiWi), writes and deletes some data, shows
that logical deletes become *persistent* within the configured threshold,
and executes a secondary range delete that would require a full-tree
compaction on a classic LSM engine.

Run:  python examples/quickstart.py
"""

from repro import LSMEngine


def main() -> None:
    # A Lethe engine: deletes persist within 2 simulated seconds, and files
    # are woven into delete tiles of 4 pages for cheap secondary deletes.
    engine = LSMEngine.lethe(
        delete_persistence_threshold=2.0,
        delete_tile_pages=4,
        buffer_pages=16,
        file_pages=32,
    )

    print("== writes ==")
    for user_id in range(500):
        engine.put(
            key=user_id,
            value=f"profile-{user_id}",
            delete_key=1_700_000_000 + user_id,  # creation timestamp
        )
    print(f"ingested 500 entries; get(42) -> {engine.get(42)!r}")

    print("\n== point delete with a persistence guarantee ==")
    engine.delete(42)
    print(f"after delete, get(42) -> {engine.get(42)!r}")
    # The tombstone must reach the last level within D_th. Simulate the
    # passage of time; FADE's TTL-driven compactions do the rest.
    engine.advance_time(2.5)
    latencies = engine.stats.persisted_latencies()
    slack = engine.config.buffer_entries / engine.config.ingestion_rate
    print(f"tombstones persisted: {len(latencies)}, "
          f"worst latency: {max(latencies):.3f}s "
          f"(bound: D_th 2.0s + one flush interval {slack:.3f}s)")
    print(f"tombstones still on disk: {engine.tombstones_on_disk()}")

    print("\n== secondary range delete (delete by timestamp) ==")
    # Drop everything created in the first 200 timestamp units — on a
    # classic engine this is a full-tree compaction; KiWi drops pages.
    report = engine.secondary_range_delete(1_700_000_000, 1_700_000_200)
    print(f"entries dropped: {report.entries_dropped}")
    print(f"full page drops (zero I/O): {report.full_page_drops}")
    print(f"partial page drops (read+rewrite): {report.partial_page_drops}")
    print(f"get(100) (timestamp in range) -> {engine.get(100)!r}")
    print(f"get(300) (timestamp out of range) -> {engine.get(300)!r}")

    print("\n== engine state ==")
    print(engine.describe())
    print(f"space amplification: {engine.space_amplification():.4f}")
    print(f"write amplification: {engine.write_amplification():.3f}")


if __name__ == "__main__":
    main()
