"""The synthetic delete-aware workload generator (§5 "Workload").

Produces deterministic operation streams as tuples consumable by
:meth:`repro.core.engine.LSMEngine.ingest`:

* ``("put", key, value, delete_key)``
* ``("delete", key)``
* ``("range_delete", start, end)``
* ``("get", key)``
* ``("scan", lo, hi)``

The ingest phase interleaves fresh inserts, updates to existing keys
(YCSB-A's 50%), point deletes of existing keys (2–10% of ingestion,
uniformly spread through the workload), and optional sort-key range
deletes. The query phase issues point lookups on previously-inserted keys
— including keys that have since been deleted, matching Fig 6D — and/or
short range scans.

The generator is stateful: iterating :meth:`ingest_operations` populates
``inserted_keys``, which :meth:`query_operations` then samples from.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.distributions import UniformKeys, ZipfianKeys
from repro.workloads.spec import DeleteKeyMode, WorkloadSpec


class WorkloadGenerator:
    """Deterministic operation-stream factory for one :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        low, high = spec.key_domain
        self._fresh_keys = UniformKeys(low, high, self._rng)
        if spec.zipfian:
            self._hot_keys = ZipfianKeys(low, high, self._rng, theta=spec.zipf_theta)
        else:
            self._hot_keys = None
        self._timestamp = 0
        self.inserted_keys: list[int] = []

    # ------------------------------------------------------------------
    # Ingest phase
    # ------------------------------------------------------------------

    def ingest_operations(self) -> Iterator[tuple]:
        """The write stream: inserts, updates, deletes, range deletes."""
        spec = self.spec
        inserted = self.inserted_keys
        inserted_set: set[int] = set()
        live: set[int] = set()

        n_deletes = int(spec.num_inserts * spec.delete_fraction)
        n_range_deletes = int(spec.num_inserts * spec.range_delete_fraction)
        updates_per_insert = (
            spec.update_fraction / (1 - spec.update_fraction)
            if spec.update_fraction < 1
            else 1.0
        )
        delete_every = max(1, spec.num_inserts // n_deletes) if n_deletes else None
        range_delete_every = (
            max(1, spec.num_inserts // n_range_deletes) if n_range_deletes else None
        )

        update_credit = 0.0
        for i in range(spec.num_inserts):
            key = self._sample_unused(inserted_set)
            inserted.append(key)
            inserted_set.add(key)
            live.add(key)
            yield ("put", key, self._value_for(key), self._delete_key_for(key))

            update_credit += updates_per_insert
            while update_credit >= 1.0 and inserted:
                update_credit -= 1.0
                victim = self._pick_existing(inserted)
                if victim in live:
                    yield (
                        "put",
                        victim,
                        self._value_for(victim),
                        self._delete_key_for(victim),
                    )

            if delete_every and (i + 1) % delete_every == 0 and live:
                victim = self._pick_live(inserted, live)
                if victim is not None:
                    live.discard(victim)
                    yield ("delete", victim)

            if range_delete_every and (i + 1) % range_delete_every == 0:
                start, end = self._range_delete_bounds()
                live.difference_update(
                    k for k in list(live) if start <= k < end
                )
                yield ("range_delete", start, end)

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------

    def query_operations(self) -> Iterator[tuple]:
        """Point/range lookups issued after the load completes (§5)."""
        spec = self.spec
        low, high = spec.key_domain
        inserted = self.inserted_keys
        for _ in range(spec.num_point_lookups):
            if spec.lookup_on_existing and inserted:
                key = inserted[self._rng.randrange(len(inserted))]
            else:
                key = self._rng.randint(low, high)
            yield ("get", key)
        for _ in range(spec.num_range_lookups):
            width = max(1, int((high - low) * spec.range_lookup_selectivity))
            start = self._rng.randint(low, max(low, high - width))
            yield ("scan", start, start + width)

    def all_operations(self) -> Iterator[tuple]:
        """Ingest phase followed by query phase."""
        yield from self.ingest_operations()
        yield from self.query_operations()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _sample_unused(self, used: set[int]) -> int:
        key = self._fresh_keys.sample()
        while key in used:
            key = self._fresh_keys.sample()
        return key

    def _pick_existing(self, inserted: list[int]) -> int:
        if self._hot_keys is not None:
            # Map the skewed draw onto the inserted population.
            index = self._hot_keys.sample() % len(inserted)
        else:
            index = self._rng.randrange(len(inserted))
        return inserted[index]

    def _pick_live(self, inserted: list[int], live: set[int]) -> int | None:
        for _ in range(16):
            candidate = self._pick_existing(inserted)
            if candidate in live:
                return candidate
        for candidate in inserted:
            if candidate in live:
                return candidate
        return None

    def _range_delete_bounds(self) -> tuple[int, int]:
        low, high = self.spec.key_domain
        width = max(1, int((high - low) * self.spec.range_delete_selectivity))
        start = self._rng.randint(low, max(low, high - width))
        return start, start + width

    def _value_for(self, key: int) -> str:
        return f"value-{key}-{self._rng.randrange(1 << 30)}"

    def _delete_key_for(self, key: int) -> int:
        mode = self.spec.delete_key_mode
        if mode is DeleteKeyMode.CORRELATED:
            return key
        if mode is DeleteKeyMode.TIMESTAMP:
            self._timestamp += 1
            return self._timestamp
        low, high = self.spec.key_domain
        return self._rng.randint(low, high)
