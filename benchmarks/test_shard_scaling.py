"""Bench for shard scaling: 1 vs 2 vs 4 partitioned Lethe engines.

Expected shape: splitting one skewed multi-tenant stream across more
shards shrinks each tree (fewer levels, less merge work), so cluster
write amplification falls monotonically while the scatter-gather
secondary-delete bill stays in the same ballpark (the same pages must
drop, whichever shard holds them). Every cluster size reports both
aggregate and per-shard metrics through the shared harness.
"""

from repro.bench import experiments as ex
from repro.bench.harness import BENCH_SCALE

from benchmarks.conftest import emit


def test_shard_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: ex.shard_scaling(BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    emit(result)

    shards = result.series["shards"]
    assert shards == [1, 2, 4]

    # Aggregate metrics exist for every cluster size.
    for key in ("ingest_ops_per_s", "write_amplification", "srd_pages"):
        assert len(result.series[key]) == len(shards)

    # Smaller per-shard trees must not amplify writes more than one tree.
    wamp = result.series["write_amplification"]
    assert wamp[-1] <= wamp[0] * 1.10, (
        f"4-shard write amplification {wamp[-1]:.3f} should not exceed "
        f"single-tree {wamp[0]:.3f}"
    )

    # The scatter-gather purge actually touched pages on every run.
    assert all(pages > 0 for pages in result.series["srd_pages"])

    # Per-shard breakdown: each cluster reports one entry count per shard,
    # and hash placement keeps the skewed stream roughly balanced.
    for n in shards:
        counts = result.series["entry_counts"][n]
        assert len(counts) == n
        assert all(count > 0 for count in counts)
    largest = result.series["entry_counts"][shards[-1]]
    assert max(largest) <= 3 * min(largest), f"hash imbalance: {largest}"
