"""Export surfaces for the observability layer.

Two formats, one registry:

* :func:`prometheus_exposition` — the Prometheus text exposition format
  (version 0.0.4): counters and gauges as single samples, histograms as
  summaries with ``quantile`` labels plus ``_count``/``_sum``, attached
  :class:`~repro.core.stats.Statistics` counters flattened under their
  registry name. Scrape-ready, and trivially parseable by the CI smoke
  check.
* :func:`registry_json` — the same snapshot as one JSON document (with
  full bucket arrays), for dashboards and offline diffing.

Chrome trace export lives on the tracer itself
(:meth:`repro.obs.trace.SpanTracer.write_chrome_trace`);
:func:`write_chrome_trace` here is the convenience wrapper over the
process-global tracer that the ``--trace`` CLI flag uses.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTracer, global_tracer

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(*parts: str) -> str:
    """A legal Prometheus metric name from dotted/freeform parts."""
    return _NAME_SANITIZER.sub("_", "_".join(p for p in parts if p))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) else str(value)
    return "0"


def prometheus_exposition(
    registry: MetricsRegistry, prefix: str = "lethe"
) -> str:
    """Render the registry as Prometheus text exposition format."""
    snapshot = registry.collect()
    lines: list[str] = []

    for name, value in sorted(snapshot["counters"].items()):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot["gauges"].items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, summary in sorted(snapshot["histograms"].items()):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} summary")
        for label, quantile in (
            ("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"), ("0.999", "p999")
        ):
            lines.append(
                f'{metric}{{quantile="{label}"}} '
                f"{_format_value(summary[quantile])}"
            )
        lines.append(f"{metric}_count {summary['count']}")
        lines.append(f"{metric}_sum {_format_value(summary['sum'])}")

    for registry_name, counters in sorted(snapshot["stats"].items()):
        for name, value in sorted(counters.items()):
            metric = _metric_name(prefix, registry_name, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(value)}")

    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict:
    """Parse exposition text back to ``{metric_or_labeled_sample: value}``.

    Deliberately minimal — it exists so tests and the CI smoke step can
    assert the exposition round-trips without a Prometheus client.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def registry_json(registry: MetricsRegistry, sampler=None) -> dict:
    """The registry snapshot (plus sampler series, if given) as a dict."""
    payload = registry.collect()
    if sampler is not None:
        payload["samples"] = sampler.samples()
        payload["sample_errors"] = sampler.sample_errors
    return payload


def write_chrome_trace(path: str, tracer: SpanTracer | None = None) -> int:
    """Dump the (global, by default) tracer's spans to ``path``.

    Returns the number of span events written.
    """
    if tracer is None:
        tracer = global_tracer()
    return tracer.write_chrome_trace(path)
