"""Bench for Fig 6C: total data written vs %deletes.

Paper shape: Lethe writes modestly more (≈4.5% at D_th = 50% of runtime;
4–25% across settings) because TTL-expired files overlap more victims.
"""

from repro.bench import experiments as ex

from benchmarks.conftest import emit


def test_fig6c_bytes_written(benchmark, bench_sweep):
    result = benchmark.pedantic(
        lambda: ex.fig6c_bytes_written(bench_sweep), rounds=1, iterations=1
    )
    emit(result)
    fractions = result.series["delete_fractions"]
    top = fractions.index(max(fractions))
    ratio = result.series["Lethe/3%"][top] / result.series["RocksDB"][top]
    print(f"bytes ratio (Lethe/3% vs RocksDB at 10% deletes): {ratio:.3f}")
    assert 0.9 <= ratio <= 1.6, "write overhead must stay modest"
