"""Bench for Fig 6E: cumulative tombstones vs age of containing files.

Paper shape: RocksDB retains ~40% of tombstones in files older than even
the loosest threshold; Lethe holds *no* tombstone past its D_th.
"""

from repro.bench import experiments as ex
from repro.bench.harness import BENCH_SCALE

from benchmarks.conftest import emit


def test_fig6e_tombstone_ages(benchmark):
    result = benchmark.pedantic(
        lambda: ex.fig6e_tombstone_ages(BENCH_SCALE, delete_fraction=0.10),
        rounds=1,
        iterations=1,
    )
    emit(result)
    runtime = result.series["runtime"]
    for fraction in ex.DTH_FRACTIONS:
        name = f"Lethe/{fraction:.0%}"
        d_th = result.series[f"{name}/d_th"]
        ages = result.series[name]
        slack = 4 * BENCH_SCALE.buffer_pages * BENCH_SCALE.page_entries / (
            BENCH_SCALE.ingestion_rate
        )
        oldest = max((age for age, _count in ages), default=0.0)
        assert oldest <= d_th + slack, (
            f"{name}: file of age {oldest:.2f}s violates D_th={d_th:.2f}s"
        )
    rocks_ages = result.series["RocksDB"]
    assert sum(c for _a, c in rocks_ages) > 0
