"""Table 2 generator: the comparative analysis of SoA / FADE / KiWi / Lethe.

Evaluates the §3.2 cost models at concrete parameters and annotates each
cell against the state of the art with the paper's markers:

* ``▲`` better, ``▼`` worse, ``•`` same, ``♦`` tunable (the KiWi rows whose
  direction depends on h).

``render_table2()`` returns the formatted table the corresponding bench
prints; ``compute_table2()`` returns raw numbers for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cost_model import CostModel, Design, ModelParams, Policy

# Rows where a *larger* value is better (none in Table 2 — all are costs).
_ROW_ORDER = [
    ("entries_in_tree", "Entries in tree"),
    ("space_amp_no_deletes", "Space amp (no deletes)"),
    ("space_amp_with_deletes", "Space amp (with deletes)"),
    ("total_bytes_written", "Total bytes written"),
    ("write_amplification", "Write amplification"),
    ("delete_persistence_latency", "Delete persistence latency"),
    ("zero_result_lookup", "Zero-result point lookup"),
    ("nonzero_result_lookup", "Non-zero point lookup"),
    ("short_range_lookup", "Short range lookup"),
    ("long_range_lookup", "Long range lookup"),
    ("insert_update_cost", "Insert/update cost"),
    ("secondary_range_delete_cost", "Secondary range delete"),
    ("memory_footprint_bits", "Main memory footprint"),
]

# Rows the paper marks ♦ (tunable) for the KiWi-bearing designs.
_TUNABLE_ROWS = {
    "zero_result_lookup",
    "nonzero_result_lookup",
    "short_range_lookup",
    "secondary_range_delete_cost",
    "memory_footprint_bits",
}


@dataclass(frozen=True)
class Table2Cell:
    value: float
    marker: str  # one of "▲" "▼" "•" "♦"


def _marker(design: Design, row: str, value: float, baseline: float) -> str:
    if design is Design.STATE_OF_THE_ART:
        return "•"
    if row in _TUNABLE_ROWS and design in (Design.KIWI, Design.LETHE):
        # These cells depend on the knob h: the paper marks them tunable
        # regardless of where the current h happens to land.
        return "♦"
    if abs(value - baseline) <= 1e-12 * max(1.0, abs(baseline)):
        return "•"
    return "▲" if value < baseline else "▼"


def compute_table2(
    params: ModelParams | None = None,
    policy: Policy = Policy.LEVELING,
    d_th: float | None = 60.0,
) -> dict[str, dict[str, Table2Cell]]:
    """Rows × designs → annotated cells (raw data behind the table)."""
    params = params or ModelParams()
    designs = [Design.STATE_OF_THE_ART, Design.FADE, Design.KIWI, Design.LETHE]
    per_design = {
        design: CostModel(params, design, policy).all_rows(d_th) for design in designs
    }
    table: dict[str, dict[str, Table2Cell]] = {}
    for row_key, _label in _ROW_ORDER:
        baseline = per_design[Design.STATE_OF_THE_ART][row_key]
        table[row_key] = {}
        for design in designs:
            value = per_design[design][row_key]
            table[row_key][design.value] = Table2Cell(
                value=value, marker=_marker(design, row_key, value, baseline)
            )
    return table


def render_table2(
    params: ModelParams | None = None,
    policy: Policy = Policy.LEVELING,
    d_th: float | None = 60.0,
) -> str:
    """The printable comparative-analysis table."""
    table = compute_table2(params, policy, d_th)
    designs = ["state_of_the_art", "fade", "kiwi", "lethe"]
    header = ["Metric".ljust(28)] + [d.replace("_", " ").ljust(16) for d in designs]
    lines = [" | ".join(header), "-" * (len(" | ".join(header)))]
    for row_key, label in _ROW_ORDER:
        cells = []
        for design in designs:
            cell = table[row_key][design]
            cells.append(f"{cell.value:>12.4g} {cell.marker}".ljust(16))
        lines.append(" | ".join([label.ljust(28)] + cells))
    return "\n".join(lines)
