"""Unit tests for the run builder: file splitting and tombstone routing."""

import pytest

from repro.core.config import lethe_config, rocksdb_config
from repro.core.stats import Statistics
from repro.kiwi.layout import KiWiFile
from repro.lsm.builder import build_run
from repro.lsm.sstable import SSTable
from repro.storage.disk import SimulatedDisk
from repro.storage.entry import RangeTombstone

from tests.conftest import TINY, make_entries


def build(entries, rts=(), config=None):
    stats = Statistics()
    disk = SimulatedDisk(stats)
    config = config or rocksdb_config(**TINY)
    return build_run(entries, list(rts), config, disk, stats, now=0.0, level=1)


class TestSplitting:
    def test_empty_run(self):
        assert build([]) == []

    def test_single_file(self):
        files = build(make_entries(range(20)))
        assert len(files) == 1
        assert files[0].meta.num_entries == 20

    def test_splits_at_file_capacity(self):
        # TINY file capacity = 8 pages × 4 entries = 32
        files = build(make_entries(range(80)))
        assert len(files) == 3
        assert [f.meta.num_entries for f in files] == [32, 32, 16]

    def test_files_are_disjoint_and_ordered(self):
        files = build(make_entries(range(100)))
        for left, right in zip(files, files[1:]):
            last_left = max(e.key for e in left.entries())
            first_right = min(e.key for e in right.entries())
            assert last_left < first_right

    def test_unsorted_input_rejected(self):
        entries = make_entries([3, 1, 2])
        shuffled = [entries[2], entries[0], entries[1]]
        with pytest.raises(ValueError):
            build(shuffled)

    def test_layout_dispatch(self):
        classic = build(make_entries(range(8)))
        assert isinstance(classic[0], SSTable)
        kiwi_config = lethe_config(1e9, delete_tile_pages=4, **TINY)
        woven = build(
            make_entries(range(8), delete_keys=list(range(8))),
            config=kiwi_config,
        )
        assert isinstance(woven[0], KiWiFile)

    def test_forced_kiwi_at_h1(self):
        config = lethe_config(1e9, delete_tile_pages=1,
                              force_kiwi_layout=True, **TINY)
        files = build(
            make_entries(range(8), delete_keys=list(range(8))), config=config
        )
        assert isinstance(files[0], KiWiFile)


class TestRangeTombstoneRouting:
    def test_rt_lands_in_covering_file(self):
        entries = make_entries(range(80))
        rt = RangeTombstone(start=5, end=10, seqnum=999)
        files = build(entries, [rt])
        assert files[0].range_tombstones == (rt,)
        assert files[1].range_tombstones == ()

    def test_rt_beyond_all_entries_lands_in_last_file(self):
        entries = make_entries(range(80))
        rt = RangeTombstone(start=500, end=600, seqnum=999)
        files = build(entries, [rt])
        assert files[-1].range_tombstones == (rt,)

    def test_rt_only_run(self):
        rt = RangeTombstone(start=5, end=10, seqnum=1)
        files = build([], [rt])
        assert len(files) == 1
        assert files[0].meta.num_entries == 0
        assert files[0].range_tombstones == (rt,)

    def test_multiple_rts_sorted_into_files(self):
        entries = make_entries(range(80))
        rts = [
            RangeTombstone(start=70, end=75, seqnum=998),
            RangeTombstone(start=0, end=3, seqnum=999),
        ]
        files = build(entries, rts)
        assert files[0].range_tombstones[0].start == 0
        assert files[-1].range_tombstones[0].start == 70
