"""End-to-end serving-layer tests: ordering, concurrency, backpressure,
and clean shutdown.

These drive a real :class:`LetheServer` over loopback sockets — no
mocked transports — because the properties under test (pipelined
response order, TCP-level backpressure, thread hygiene) live exactly at
the socket boundary.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.net import AsyncLetheClient, ClientPool, LetheClient, LetheServer
from repro.net.protocol import encode_request
from repro.shard.engine import ShardedEngine

from tests.conftest import TINY


def tiny_cluster(**kwargs) -> ShardedEngine:
    defaults = dict(n_shards=3, ingest_queue_depth=4)
    defaults.update(kwargs)
    return ShardedEngine(EngineConfig(**TINY), **defaults)


def surface(cluster: ShardedEngine) -> list[tuple]:
    return cluster.scan(-(10**9), 10**9)


@pytest.fixture
def cluster():
    cluster = tiny_cluster()
    yield cluster
    cluster.close()


class TestPipelinedOrdering:
    def test_responses_match_request_order_on_one_connection(self, cluster):
        with LetheServer(cluster) as server:
            with LetheClient("127.0.0.1", server.port) as client:
                ops = []
                expected = []
                # Interleave writes and reads of the same keys: only
                # strict in-order application can produce this result
                # vector.
                for k in range(30):
                    ops.append(("put", k, b"a%d" % k, None))
                    expected.append(None)
                    ops.append(("get", k))
                    expected.append(b"a%d" % k)
                    ops.append(("put", k, b"b%d" % k, None))
                    expected.append(None)
                    ops.append(("get", k))
                    expected.append(b"b%d" % k)
                    if k % 3 == 0:
                        ops.append(("delete", k))
                        expected.append(None)
                        ops.append(("get", k))
                        expected.append(None)
                assert client.execute(ops) == expected

    def test_scan_sees_every_earlier_pipelined_write(self, cluster):
        with LetheServer(cluster) as server:
            with LetheClient("127.0.0.1", server.port) as client:
                ops = [("put", k, b"v", None) for k in range(40)]
                ops.append(("scan", 0, 39))
                results = client.execute(ops)
                assert [k for k, _ in results[-1]] == list(range(40))


class TestConcurrentClients:
    N_CLIENTS = 8
    KEYS = 240

    def _operations_for(self, client_id: int) -> list[tuple]:
        # Each client owns a disjoint key slice, so per-key order is
        # preserved no matter how the server interleaves connections.
        ops = []
        for k in range(client_id, self.KEYS, self.N_CLIENTS):
            ops.append(("put", k, b"first-%d" % k, k % 17))
            ops.append(("put", k, b"final-%d" % k, k % 17))
            if k % 5 == 0:
                ops.append(("delete", k))
        return ops

    def _reference_surface(self) -> list[tuple]:
        reference = tiny_cluster()
        try:
            for client_id in range(self.N_CLIENTS):
                reference.ingest(self._operations_for(client_id))
            return surface(reference)
        finally:
            reference.close()

    def test_threaded_clients_match_in_process_ingest(self, cluster):
        errors = []
        with LetheServer(cluster) as server:
            with ClientPool("127.0.0.1", server.port, size=self.N_CLIENTS) as pool:

                def run(client_id: int) -> None:
                    try:
                        with pool.connection() as client:
                            client.execute(self._operations_for(client_id))
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=run, args=(i,))
                    for i in range(self.N_CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        assert not errors
        assert surface(cluster) == self._reference_surface()

    def test_async_clients_match_in_process_ingest(self, cluster):
        async def drive() -> None:
            clients = [
                await AsyncLetheClient.connect("127.0.0.1", server.port)
                for _ in range(self.N_CLIENTS)
            ]

            async def run(client_id: int) -> None:
                client = clients[client_id]
                futures = [
                    await client.submit(op)
                    for op in self._operations_for(client_id)
                ]
                await asyncio.gather(*futures)

            try:
                await asyncio.gather(*[run(i) for i in range(self.N_CLIENTS)])
            finally:
                for client in clients:
                    await client.close()

        with LetheServer(cluster) as server:
            asyncio.run(drive())
        assert surface(cluster) == self._reference_surface()


class TestBackpressure:
    def test_stalled_engine_suspends_socket_reads(self, cluster):
        """With the engine wedged, the server must stop *reading*, not
        buffer: parsed-request count stays inside the in-flight window
        while thousands of requests sit unread in the socket."""
        window, batch_max = 8, 4
        flood = 1500
        with LetheServer(
            cluster, inflight_window=window, batch_max=batch_max
        ) as server:
            wire = b"".join(
                encode_request(("put", k, b"x" * 32, None)) for k in range(flood)
            )
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as sock:
                # Wedge every engine operation: the topology gate held
                # exclusively blocks all dispatch, exactly like a
                # write-stall (scheduler.throttle) blocking the batch
                # worker — but deterministic.
                gate = cluster._gate.exclusive()
                gate.__enter__()
                try:
                    sender = threading.Thread(
                        target=lambda: sock.sendall(wire), daemon=True
                    )
                    sender.start()
                    # Wait for the parsed-request count to stop moving —
                    # a real quiescence window over a real socket.
                    last, stable_since = -1, time.monotonic()  # lint: allow(deterministic-clock)
                    while time.monotonic() - stable_since < 0.5:  # lint: allow(deterministic-clock)
                        now = server.requests_received
                        if now != last:
                            last, stable_since = now, time.monotonic()  # lint: allow(deterministic-clock)
                        time.sleep(0.02)
                    # window queued + one batch in dispatch + the one
                    # blocked in queue.put + one carry. Everything else
                    # stays in kernel socket buffers, unread — asyncio's
                    # own stream buffer is capped (64 KiB), so bounded
                    # parsed-count here means bounded server memory.
                    bound = window + batch_max + 2
                    assert server.requests_received <= bound
                finally:
                    gate.__exit__(None, None, None)
                # Released: everything drains and every write acks.
                sender.join(timeout=60)
                assert not sender.is_alive()
                sock.settimeout(60)
                from repro.net.protocol import FrameDecoder, decode_response

                decoder = FrameDecoder()
                responses = []
                while len(responses) < flood:
                    chunk = sock.recv(1 << 16)
                    assert chunk, "server closed before all acks"
                    for payload in decoder.feed(chunk):
                        responses.append(decode_response(payload))
                assert all(r == ("ok",) for r in responses)
        assert cluster.get(flood - 1) == b"x" * 32


class TestShutdownHygiene:
    SERVING_THREADS = ("net-server", "net-dispatch", "ingest-shard")

    def _serving_threads(self) -> list[str]:
        return [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(self.SERVING_THREADS)
        ]

    def test_stop_leaves_no_threads_or_tasks(self, cluster):
        server = LetheServer(cluster).start()
        with LetheClient("127.0.0.1", server.port) as client:
            client.execute(
                [("put", k, b"v", None) for k in range(50)] + [("flush",)]
            )
            assert self._serving_threads()  # sanity: they exist while up
            server.stop()  # stop with the client still connected
        assert self._serving_threads() == []
        # The cluster survives its server and still answers in-process.
        assert cluster.get(0) == b"v"

    def test_stop_is_idempotent_and_restartable_cluster_close(self):
        cluster = tiny_cluster()
        server = LetheServer(cluster).start()
        server.stop()
        server.stop()
        cluster.close()
        assert self._serving_threads() == []
        assert not any(
            t.name == "obs-sampler" for t in threading.enumerate()
        )

    def test_cluster_close_is_exception_safe(self, monkeypatch):
        """A failing member close must not leak the other members or
        the executor/scheduler threads (the ISSUE's close() fix)."""
        cluster = tiny_cluster(executor="pooled")
        closed = []
        shard0 = cluster.shards[0]
        original_close = type(shard0).close

        def failing_close(self):
            if self is shard0:
                raise RuntimeError("injected close failure")
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(type(shard0), "close", failing_close)
        with pytest.raises(RuntimeError, match="injected close failure"):
            cluster.close()
        # Every *other* member still closed, and no pool threads leak.
        assert len(closed) == cluster.n_shards - 1
        monkeypatch.undo()
        shard0.close()
        assert not [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(("shard", "compaction"))
        ]


class TestIngestSession:
    def test_session_submits_are_ordered_and_awaitable(self, cluster):
        with cluster.ingest_session() as session:
            first = session.submit(
                [("put", k, b"one", None) for k in range(20)]
            )
            second = session.submit(
                [("put", k, b"two", None) for k in range(20)]
            )
            second.wait(timeout=30)
            first.wait(timeout=30)
        assert all(cluster.get(k) == b"two" for k in range(20))

    def test_session_barrier_drains_before_running(self, cluster):
        with cluster.ingest_session() as session:
            session.submit(
                [("put", k, b"v", None) for k in range(30)]
                + [("scan", 0, 29)]  # barrier: must see all 30
            )
        assert len(surface(cluster)) == 30

    def test_ticket_reports_handler_failure(self, cluster, monkeypatch):
        original = type(cluster)._apply_batch

        def exploding(self, routed, index, batch_ops):
            if any(op[1] == 666 for op in batch_ops):
                raise RuntimeError("injected batch failure")
            return original(self, routed, index, batch_ops)

        monkeypatch.setattr(type(cluster), "_apply_batch", exploding)
        with cluster.ingest_session() as session:
            good = session.submit([("put", 1, b"ok", None)])
            good.wait(timeout=30)
            bad = session.submit([("put", 666, b"boom", None)])
            with pytest.raises(RuntimeError, match="injected batch failure"):
                bad.wait(timeout=30)
            session.abort()  # the failed shard lane stays poisoned
        assert cluster.get(1) == b"ok"
