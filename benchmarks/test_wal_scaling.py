"""Bench for the durability hot path: group-commit WAL + pooled recovery.

Expected shape: ``every_op`` pays one physical append (and fsync) per
operation, so any batching policy must beat it on ingest throughput
while recovering the identical read surface (the experiment asserts
equality internally and raises otherwise); ``unsafe_none`` is the upper
bound. On the recovery side, member recoveries wait on the device for
every page they load, so the pooled executor must turn the per-shard
work split into wall-clock speedup at 4 shards.

The floors asserted here sit well below the measured values (group(16)
≈ 1.7–2x over every_op at this scale, pooled recovery ≈ 2.5–3.8x at 4
shards) so CI machine noise does not flake the suite.
"""

from repro.bench import experiments as ex
from repro.bench.harness import ExperimentScale

from benchmarks.conftest import emit

# Smaller than BENCH_SCALE: at large volumes compaction CPU dominates
# the ingest wall clock and dilutes the WAL share; this scale keeps the
# durability hot path the thing being measured.
WAL_BENCH_SCALE = ExperimentScale(num_inserts=4000, num_point_lookups=0)


def test_wal_group_commit_and_pooled_recovery(benchmark):
    result = benchmark.pedantic(
        lambda: ex.wal_experiment(WAL_BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    emit(result)

    policies = result.series["policies"]
    names = policies["policies"]
    throughput = dict(zip(names, policies["ingest_ops_per_s"]))
    writes_per_op = dict(zip(names, policies["writes_per_op"]))

    # Batching must save physical writes by roughly its batch factor.
    assert writes_per_op["group(16)"] < writes_per_op["every_op"] / 3, (
        f"group(16) barely batched: {writes_per_op}"
    )
    assert writes_per_op["unsafe_none"] <= writes_per_op["group(16)"], (
        f"unsafe_none should drain least: {writes_per_op}"
    )

    # The acceptance target: a measured ingest-throughput win for the
    # batched policies over every_op (measured ≈ 1.7–2x). Each policy
    # must win outright; the best must win with margin — the split
    # keeps a loaded CI machine from flaking the per-policy floor.
    batched_speedups = {
        policy: throughput[policy] / throughput["every_op"]
        for policy in ("group(16)", "interval(20)")
    }
    for policy, speedup in batched_speedups.items():
        assert speedup >= 1.05, (
            f"{policy} ingest speedup over every_op only {speedup:.2f}x"
        )
    assert max(batched_speedups.values()) >= 1.2, (
        f"no batched policy won with margin: {batched_speedups}"
    )

    recovery = result.series["recovery"]
    shards = recovery["shards"]
    speedups = dict(zip(shards, recovery["recovery_speedups"]))
    assert all(wall > 0 for wall in recovery["serial_recovery_s"])

    # Pooled recovery must win wall-clock at >= 4 shards (measured
    # ≈ 2.5–3.8x; floor 1.25x), and one shard must not pay much for the
    # pool it cannot use.
    assert speedups[4] >= 1.25, (
        f"pooled recovery speedup at 4 shards only {speedups[4]:.2f}x"
    )
    assert speedups[1] > 0.5, (
        f"pool overhead at 1 shard: {speedups[1]:.2f}x"
    )
