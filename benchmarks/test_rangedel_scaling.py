"""Bench gate for first-class primary-key range deletes.

Expected shape: offboarding a tenant with ``delete_range`` writes one
WAL record and one buffered tombstone — O(1) whatever the tenant's
size — while the scan-and-tombstone recipe it replaces pays one point
delete (and, under ``every_op``, one durable append) per live key. The
experiment asserts the two strategies converge on the identical final
scan surface and that the tombstone survives recovery; this bench pins
the cost separation.

The acceptance target is a >= 10x write-cost win at 100k-key ranges.
Measured values at this scale sit in the thousands (one op versus one
per live key), so the floor has orders of magnitude of slack against CI
machine noise.
"""

from repro.bench import experiments as ex
from repro.bench.harness import ExperimentScale

from benchmarks.conftest import emit

# Enough inserts that the hottest tenant's live set is comfortably past
# the 10x gate; the victim key range spans 2^17 = 131072 keys.
RANGEDEL_BENCH_SCALE = ExperimentScale(num_inserts=6000, num_point_lookups=0)
WIDE_TENANT_KEYS = 1 << 17


def test_range_delete_beats_scan_and_tombstone(benchmark):
    result = benchmark.pedantic(
        lambda: ex.rangedel_experiment(
            RANGEDEL_BENCH_SCALE, keys_per_tenant=WIDE_TENANT_KEYS
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    series = result.series
    lo, hi = series["victim_range"]
    assert hi - lo >= 100_000, (
        f"victim range spans only {hi - lo} keys; the gate is for "
        "100k-key ranges"
    )

    # The experiment raises internally if surfaces diverge; re-assert
    # the recorded flags so a silent series regression cannot pass.
    assert series["surface_identical"] is True
    assert series["recovered_identical"] is True

    # The acceptance gate: >= 10x cheaper on both acknowledged ingest
    # operations and physical durable writes.
    assert series["ops_ratio"] >= 10, (
        f"range delete only {series['ops_ratio']:.1f}x cheaper in ops"
    )
    assert series["write_ratio"] >= 10, (
        f"range delete only {series['write_ratio']:.1f}x cheaper in "
        "durable writes"
    )

    # O(1) spelled out: the range-delete side's cost must not scale
    # with the tenant's live set at all.
    assert series["rangedel"]["ingest_ops"] == 1
    assert series["rangedel"]["durable_writes"] <= 2
    assert series["baseline"]["ingest_ops"] == series["live_keys_offboarded"]
