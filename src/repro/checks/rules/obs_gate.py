"""obs-gate: hot-path histogram recording stays behind ``obs.enabled``.

The observability layer's contract is one predictable branch per
operation when disabled — that is what keeps the <5% overhead gate
(``benchmarks/test_obs_overhead.py``) honest. Spans already cost
nothing when off (the tracer is a null object), but histogram
``.record()`` calls do real bucketing work, so each must sit in a
function that checks the ``.enabled`` flag (early-return or ``if``
guard — the established idioms in ``core/engine.py`` and
``storage/persist.py``).

The rule flags ``<something involving obs>.record(...)`` calls whose
enclosing function never reads an ``.enabled`` attribute. It does not
prove the *order* of gate and record — that stays on review — but it
catches the common regression: a new metric recorded unconditionally.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint import (
    Finding,
    ParsedModule,
    Rule,
    mentions_enabled,
    path_in,
)

WHITELIST = (
    "src/repro/obs/",
    "src/repro/bench/",
    "src/repro/net/server.py",
    "tests/",
    "benchmarks/",
    "tools/",
)


class ObsGateRule(Rule):
    name = "obs-gate"
    description = (
        "histogram .record() calls must sit behind an obs.enabled check"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if path_in(module.rel, WHITELIST):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record"
            ):
                continue
            receiver = ast.unparse(node.func.value)
            if "obs" not in receiver:
                continue  # not an observability metric
            function = module.enclosing_function(node)
            if function is not None and mentions_enabled(function):
                continue
            yield Finding(
                rule=self.name,
                path=module.rel,
                line=node.lineno,
                message=(
                    f"{receiver}.record() without an obs.enabled gate in "
                    f"the enclosing function"
                ),
            )
