"""Bench for the serving layer: pipelining speedup and concurrent fan-in.

Expected shape: a pipelined connection amortizes the per-round-trip
latency (socket wakeups, frame parses, dispatch hand-offs) across a
burst, so its throughput must beat one-request-per-round-trip by a
healthy margin — the CI gate is 1.3x, the observed margin is usually
3–6x on loopback. The concurrent part fans a multi-tenant skewed
stream across >100 async connections and asserts (inside the driver,
hard) that the served cluster's final state is byte-identical to an
in-process ingest of the same stream.
"""

from repro.bench import experiments as ex
from repro.bench.harness import BENCH_SCALE

from benchmarks.conftest import emit


def test_serving_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: ex.serving_experiment(BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    emit(result)

    pipelining = result.series["pipelining"]
    serving = result.series["serving"]

    # The gate: pipelined throughput >= 1.3x one-request-per-round-trip.
    assert pipelining["speedup"] >= 1.3, (
        f"pipelining speedup {pipelining['speedup']:.2f}x under the "
        f"1.3x CI floor"
    )
    assert (
        pipelining["pipelined_ops_per_s"]
        >= 1.3 * pipelining["sequential_ops_per_s"]
    )

    # The acceptance scale: >= 100 concurrent connections, and the
    # served state matched in-process ingest (asserted in the driver,
    # re-checked here via the series flag).
    assert serving["connections"] >= 100
    assert serving["identical_state"] is True
    assert serving["total_requests"] > 0
    assert serving["ops_per_s"] > 0

    # Latency histogram actually observed the run.
    assert serving["net_request_p99_ms"] >= serving["net_request_p50_ms"] > 0
