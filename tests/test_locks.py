"""Lockdep unit tests: rank enforcement, passthrough, condition wiring.

The suite-wide conftest enables validation at import, so engines built
by other tests already run under lockdep; these tests pin the wrapper's
own contract — violations raise with both acquisition stacks, and
passthrough mode returns the plain ``threading`` primitive itself.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import locks
from repro.core.locks import (
    LockOrderViolation,
    OrderedCondition,
    OrderedLock,
    OrderedRLock,
    OrderedSemaphore,
)


@pytest.fixture
def validating():
    was = locks.is_validating()
    locks.set_validation(True)
    yield
    locks.set_validation(was)


@pytest.fixture
def passthrough():
    was = locks.is_validating()
    locks.set_validation(False)
    yield
    locks.set_validation(was)


class TestOrdering:
    def test_ascending_ranks_pass(self, validating):
        low = OrderedLock("low", 10)
        high = OrderedLock("high", 20)
        with low:
            with high:
                assert locks.held_ranks() == [("low", 10), ("high", 20)]
        assert locks.held_ranks() == []

    def test_inverted_acquisition_raises(self, validating):
        low = OrderedLock("low", 10)
        high = OrderedLock("high", 20)
        with high:
            with pytest.raises(LockOrderViolation) as excinfo:
                with low:  # raises before acquiring
                    pass
        violation = excinfo.value
        assert "'low'" in str(violation) and "'high'" in str(violation)
        # Both acquisition call sites are carried for diagnosis.
        assert violation.held_site and violation.acquire_site
        assert any("test_locks" in frame[0] for frame in violation.held_site)
        assert any(
            "test_locks" in frame[0] for frame in violation.acquire_site
        )

    def test_equal_rank_different_lock_raises(self, validating):
        first = OrderedLock("first", 30)
        second = OrderedLock("second", 30)
        with first:
            with pytest.raises(LockOrderViolation):
                second.acquire()  # lint: allow(lock-discipline)

    def test_rlock_reenters(self, validating):
        lock = OrderedRLock("re", 40)
        with lock:
            with lock:
                assert len(locks.held_ranks()) == 2
        assert locks.held_ranks() == []

    def test_plain_lock_blocking_reentry_raises(self, validating):
        lock = OrderedLock("plain", 40)
        with lock:
            with pytest.raises(LockOrderViolation):
                lock.acquire()  # lint: allow(lock-discipline)

    def test_nonblocking_reentry_probe_fails_quietly(self, validating):
        # Condition._is_owned probes ownership with acquire(False); a
        # held validating lock must fail the probe, not raise.
        lock = OrderedLock("probe", 40)
        with lock:
            assert lock.acquire(False) is False
        assert lock.acquire(False) is True
        lock.release()

    def test_release_of_unheld_lock_raises(self, validating):
        lock = OrderedLock("unheld", 10)
        with pytest.raises(LockOrderViolation):
            lock.release()

    def test_stack_is_per_thread(self, validating):
        low = OrderedLock("low", 10)
        high = OrderedLock("high", 20)
        errors: list[BaseException] = []

        def other():
            try:
                # This thread holds nothing: acquiring low is legal even
                # while the main thread holds high.
                acquired = low.acquire(timeout=1)  # lint: allow(lock-discipline)
                assert acquired
                low.release()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with high:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert not errors


class TestSemaphore:
    def test_multiple_permits_one_thread(self, validating):
        permits = OrderedSemaphore("permits", 10, value=2)
        assert permits.acquire()
        assert permits.acquire()
        permits.release()
        permits.release()
        assert locks.held_ranks() == []

    def test_semaphore_respects_rank_order(self, validating):
        state = OrderedLock("state", 20)
        permits = OrderedSemaphore("permits", 10)
        with state:
            with pytest.raises(LockOrderViolation):
                permits.acquire()  # lint: allow(lock-discipline)

    def test_release_from_non_holder_thread(self, validating):
        # Hand-off pattern: one thread acquires, another releases.
        permits = OrderedSemaphore("handoff", 10, value=1)
        assert permits.acquire()

        def releaser():
            permits.release()

        thread = threading.Thread(target=releaser)
        thread.start()
        thread.join()
        # The hand-off banked a credit that cancels this thread's stale
        # stack entry: an even *lower* rank must acquire cleanly, and
        # the stack must come out empty — a pinned rank-10 entry here
        # would turn every later low-rank acquisition on this thread
        # into a false violation.
        lower = OrderedLock("lower", 5)
        with lower:
            pass
        assert locks.held_ranks() == []
        # And the semaphore itself is usable again.
        assert permits.acquire(timeout=1)
        permits.release()


class TestCondition:
    def test_wait_notify_roundtrip(self, validating):
        cv = OrderedCondition("cv", 60)
        ready = []

        def waiter():
            with cv:
                while not ready:
                    cv.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        with cv:
            ready.append(True)
            cv.notify()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_condition_rank_enforced(self, validating):
        cv = OrderedCondition("cv", 60)
        leaf = OrderedLock("leaf", 90)
        with leaf:
            with pytest.raises(LockOrderViolation):
                cv.acquire()  # lint: allow(lock-discipline)


class TestPassthrough:
    def test_lock_is_plain_primitive(self, passthrough):
        lock = OrderedLock("x", 10)
        assert type(lock) is type(threading.Lock())
        assert set(dir(lock)) == set(dir(threading.Lock()))

    def test_rlock_is_plain_primitive(self, passthrough):
        rlock = OrderedRLock("x", 10)
        assert type(rlock) is type(threading.RLock())
        assert set(dir(rlock)) == set(dir(threading.RLock()))

    def test_semaphore_and_condition_are_plain(self, passthrough):
        semaphore = OrderedSemaphore("x", 10, value=3)
        assert type(semaphore) is threading.Semaphore
        condition = OrderedCondition("x", 10)
        assert type(condition) is threading.Condition
        # The backing lock is the stock one, not a validating wrapper.
        assert type(condition._lock) is type(threading.RLock())

    def test_passthrough_ignores_ordering(self, passthrough):
        low = OrderedLock("low", 10)
        high = OrderedLock("high", 20)
        with high:
            with low:  # no validation, no violation
                pass

    def test_flag_read_at_construction(self, passthrough):
        plain = OrderedLock("x", 10)
        locks.set_validation(True)
        validating_lock = OrderedLock("x", 10)
        assert type(plain) is type(threading.Lock())
        assert type(validating_lock) is not type(threading.Lock())
        assert validating_lock.rank == 10


class TestEngineIntegration:
    def test_engine_locks_validate_under_lockdep(self, validating):
        from repro.core.config import lethe_config
        from repro.core.engine import LSMEngine

        engine = LSMEngine(lethe_config(1.0))
        try:
            # The documented order: compaction mutex -> commit lock.
            assert engine._compaction_mutex.rank < engine._commit_lock.rank
            for i in range(100):
                engine.put(i, i)
            engine.flush()
            assert engine.get(1) == 1
        finally:
            engine.close()

    def test_inverting_engine_locks_raises(self, validating):
        from repro.core.config import lethe_config
        from repro.core.engine import LSMEngine

        engine = LSMEngine(lethe_config(1.0))
        try:
            with engine._commit_lock:
                with pytest.raises(LockOrderViolation):
                    engine._compaction_mutex.acquire()  # lint: allow(lock-discipline)
        finally:
            engine.close()
