"""Crash durability at the network boundary.

PR 4's acknowledged-prefix oracle, lifted to the serving layer: a client
pipelines writes at a durable cluster, the server is killed mid-stream
(``LetheServer.abort()`` — queued batches dropped, stores left exactly
as a process kill would), and the store is reopened. The contract at the
ack boundary:

* every write the client saw an ``OK`` for is recovered — the server
  syncs the cluster WAL before acknowledging, so group-commit batching
  can never lose an acked write;
* an *unacknowledged* write may have landed (it was in flight) or not,
  but if present it is intact — never torn, never reordered against the
  acked prefix of its key.

Each operation uses a distinct key and value, so the oracle is a simple
per-key membership check rather than a sequence prefix match.
"""

from __future__ import annotations

import socket
import tempfile

import pytest

from repro.core.config import lethe_config
from repro.net.protocol import (
    LENGTH_PREFIX_BYTES,
    decode_response,
    encode_request,
    parse_length,
)
from repro.net.server import LetheServer
from repro.shard.engine import ShardedEngine

from tests.conftest import TINY

FLAVOURS = [
    ("every_op", {}),
    ("group4", {"wal_commit_policy": "group(4)"}),
    ("interval5ms", {"wal_commit_policy": "interval(5)"}),
]

TOTAL_OPS = 120


def durable_config(**overrides):
    return lethe_config(0.5, delete_tile_pages=4, **{**TINY, **overrides})


def value_for(i: int) -> bytes:
    return b"value-%04d" % i


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def stream_and_kill(tmp: str, config_overrides: dict, kill_after: int) -> int:
    """Pipeline TOTAL_OPS puts, abort the server after ``kill_after``
    acks, and return how many acks the client actually observed."""
    cluster = ShardedEngine(
        durable_config(**config_overrides),
        n_shards=2,
        ingest_queue_depth=4,
        store_path=tmp,
    )
    server = LetheServer(cluster, batch_max=8).start()
    acked = 0
    try:
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=30
        ) as sock:
            sock.sendall(
                b"".join(
                    encode_request(("put", i, value_for(i), i % 13))
                    for i in range(TOTAL_OPS)
                )
            )
            while acked < kill_after:
                try:
                    header = _recv_exact(sock, LENGTH_PREFIX_BYTES)
                    payload = _recv_exact(sock, parse_length(header))
                except (ConnectionError, socket.timeout):
                    break
                response = decode_response(payload)
                assert response == ("ok",), f"ack {acked} was {response!r}"
                acked += 1
    finally:
        # The kill: loop torn down, queued-but-unapplied batches
        # dropped, member stores NOT closed and NOT drained.
        server.abort()
    return acked


@pytest.mark.parametrize("name,config_overrides", FLAVOURS)
@pytest.mark.parametrize("kill_after", [1, 17, 60, 111])
def test_acknowledged_writes_survive_server_kill(
    name, config_overrides, kill_after
):
    with tempfile.TemporaryDirectory() as tmp:
        acked = stream_and_kill(tmp, config_overrides, kill_after)
        assert acked >= min(kill_after, 1), f"[{name}] no writes acked"
        recovered = ShardedEngine.open(tmp)
        try:
            for i in range(acked):
                got = recovered.get(i)
                assert got == value_for(i), (
                    f"[{name}@{kill_after}] acked write {i} lost or torn: "
                    f"{got!r}"
                )
            for i in range(acked, TOTAL_OPS):
                got = recovered.get(i)
                assert got in (None, value_for(i)), (
                    f"[{name}@{kill_after}] unacked write {i} recovered "
                    f"torn: {got!r}"
                )
        finally:
            recovered.close()


DR_LO, DR_HI = 10, 30
DR_PRELOAD = 40       # puts 0..39 precede the range delete
DR_TAIL_BASE = 50     # unacked tail keys stay clear of the deleted span


def rangedel_stream() -> list[tuple]:
    """Puts, one mid-stream ``delete_range``, then a disjoint tail."""
    ops: list[tuple] = [
        ("put", i, value_for(i), i % 13) for i in range(DR_PRELOAD)
    ]
    ops.append(("delete_range", DR_LO, DR_HI))
    ops.extend(
        ("put", DR_TAIL_BASE + i, value_for(DR_TAIL_BASE + i), None)
        for i in range(40)
    )
    return ops


def stream_ops_and_kill(tmp: str, config_overrides: dict,
                        ops: list[tuple], kill_after: int) -> int:
    """Pipeline ``ops``, abort the server after ``kill_after`` acks."""
    cluster = ShardedEngine(
        durable_config(**config_overrides),
        n_shards=2,
        ingest_queue_depth=4,
        store_path=tmp,
    )
    server = LetheServer(cluster, batch_max=8).start()
    acked = 0
    try:
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=30
        ) as sock:
            sock.sendall(b"".join(encode_request(op) for op in ops))
            while acked < kill_after:
                try:
                    header = _recv_exact(sock, LENGTH_PREFIX_BYTES)
                    payload = _recv_exact(sock, parse_length(header))
                except (ConnectionError, socket.timeout):
                    break
                response = decode_response(payload)
                assert response == ("ok",), f"ack {acked} was {response!r}"
                acked += 1
    finally:
        server.abort()
    return acked


@pytest.mark.parametrize("name,config_overrides", FLAVOURS)
def test_acked_range_delete_survives_server_kill(name, config_overrides):
    """Kill the server right after the ``delete_range`` ack: the single
    range tombstone is an acknowledged write like any other, so recovery
    must show the whole span deleted — never a partially deleted range,
    never a resurrected key."""
    ops = rangedel_stream()
    kill_after = DR_PRELOAD + 1  # the delete_range ack is the last one
    with tempfile.TemporaryDirectory() as tmp:
        acked = stream_ops_and_kill(tmp, config_overrides, ops, kill_after)
        assert acked >= kill_after, f"[{name}] stream died before the ack"
        recovered = ShardedEngine.open(tmp)
        try:
            for i in range(DR_PRELOAD):
                got = recovered.get(i)
                if DR_LO <= i < DR_HI:
                    assert got is None, (
                        f"[{name}] key {i} survived an acked delete_range"
                    )
                else:
                    assert got == value_for(i), (
                        f"[{name}] acked put {i} lost or torn: {got!r}"
                    )
            # Unacked tail writes may or may not have landed — whole only.
            for i in range(40):
                key = DR_TAIL_BASE + i
                assert recovered.get(key) in (None, value_for(key))
        finally:
            recovered.close()


def test_unsynced_server_can_lose_acked_writes_documenting_why_sync_matters():
    """Control experiment: with ``sync_writes=False`` under a batched
    commit policy the same kill *may* lose acked writes — the forced
    sync before the ack is what turns the OK frame into a durability
    boundary. (May, not must: a batch boundary can land anywhere, so
    this only asserts recovery yields a clean prefix-or-present state.)
    """
    with tempfile.TemporaryDirectory() as tmp:
        cluster = ShardedEngine(
            durable_config(wal_commit_policy="group(16)"),
            n_shards=2,
            ingest_queue_depth=4,
            store_path=tmp,
        )
        server = LetheServer(cluster, batch_max=8, sync_writes=False).start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as sock:
                sock.sendall(
                    b"".join(
                        encode_request(("put", i, value_for(i), None))
                        for i in range(TOTAL_OPS)
                    )
                )
                for _ in range(TOTAL_OPS):
                    header = _recv_exact(sock, LENGTH_PREFIX_BYTES)
                    decode_response(
                        _recv_exact(sock, parse_length(header))
                    )
        finally:
            server.abort()
        recovered = ShardedEngine.open(tmp)
        try:
            # No torn values, ever — only whole writes may be missing.
            for i in range(TOTAL_OPS):
                assert recovered.get(i) in (None, value_for(i))
        finally:
            recovered.close()


def test_clean_stop_then_close_loses_nothing():
    """The graceful path: stop() drains the shared session, close()
    drains the WAL — every acked write and every in-flight write that
    got applied is present after reopen."""
    with tempfile.TemporaryDirectory() as tmp:
        cluster = ShardedEngine(
            durable_config(wal_commit_policy="group(4)"),
            n_shards=2,
            ingest_queue_depth=4,
            store_path=tmp,
        )
        from repro.net.client import LetheClient

        with LetheServer(cluster) as server:
            with LetheClient("127.0.0.1", server.port) as client:
                client.execute(
                    [("put", i, value_for(i), None) for i in range(60)]
                )
        cluster.close()
        recovered = ShardedEngine.open(tmp)
        try:
            for i in range(60):
                assert recovered.get(i) == value_for(i)
        finally:
            recovered.close()
