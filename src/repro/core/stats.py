"""Metrics registry: every counter the paper's evaluation reports.

The evaluation section of the paper (§5) measures, per experiment:

* total number of compactions performed            (Fig 6B)
* total bytes compacted / written                  (Fig 6C, 6F)
* number of tombstones present and their file ages (Fig 6E)
* space amplification                              (Fig 6A, per §3.2.1)
* write amplification                              (per §3.2.3)
* read throughput / latency                        (Fig 6D, 6G)
* page I/Os and Bloom-filter hash computations     (Fig 6I–6K)
* full vs partial page drops                       (Fig 6H)

:class:`Statistics` is a single mutable registry threaded through the
storage layer, the compaction machinery, and the engine facade, so every
bench reads its series from one place.

Thread safety
-------------
Most counters are plain attributes incremented from the thread that owns
the engine, and the sharded layer keeps one registry per member engine
plus a per-shard lock around every dispatched task
(:mod:`repro.shard.engine`). Since the background compaction scheduler
(:mod:`repro.compaction.scheduler`) arrived, the counters that
*compactions* touch — bytes read/written, compaction counts, page I/O,
tombstone drops, persistence records — may also be bumped from a worker
thread while the write path keeps ingesting. Those paths funnel through
:meth:`add` (and :meth:`record_tombstone_insert`), which mutate under an
internal lock, the same treatment :class:`~repro.core.clock.
SimulatedClock` and the run-file counter already received.
Cluster-wide totals are built by :meth:`merge`/:meth:`combined` into a
fresh registry while the shard locks are held. :meth:`merge` itself
snapshots ``other.persistence_records`` before extending, so a merged
view taken concurrently with an append never observes a half-grown list.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable

from repro.core import locks


@dataclass
class PersistenceRecord:
    """Lifecycle of one tombstone, for delete-persistence accounting.

    Attributes
    ----------
    key:
        The deleted sort key (or range start for range tombstones).
    inserted_at:
        Simulated time the tombstone entered the memory buffer.
    persisted_at:
        Simulated time the tombstone was discarded by a last-level
        compaction (i.e. the logical delete became persistent), or ``None``
        while it is still live in the tree.
    """

    key: object
    inserted_at: float
    persisted_at: float | None = None

    @property
    def latency(self) -> float | None:
        """Delete persistence latency, or ``None`` if not yet persisted."""
        if self.persisted_at is None:
            return None
        return self.persisted_at - self.inserted_at


@dataclass
class Statistics:
    """Mutable counters shared by all engine components.

    All byte counts are simulated bytes (declared entry sizes), all I/O
    counts are page-granularity, and all times are simulated seconds.
    """

    # --- write path -----------------------------------------------------
    entries_ingested: int = 0
    point_tombstones_ingested: int = 0
    range_tombstones_ingested: int = 0
    blind_deletes_skipped: int = 0
    buffer_flushes: int = 0

    # --- compaction -----------------------------------------------------
    compactions: int = 0
    ttl_triggered_compactions: int = 0
    saturation_triggered_compactions: int = 0
    full_tree_compactions: int = 0
    compaction_bytes_read: int = 0
    compaction_bytes_written: int = 0
    compaction_entries_in: int = 0
    compaction_entries_out: int = 0
    tombstones_dropped: int = 0
    invalid_entries_purged: int = 0

    # --- I/O ------------------------------------------------------------
    pages_read: int = 0
    pages_written: int = 0
    pages_dropped_full: int = 0
    pages_dropped_partial: int = 0
    bytes_flushed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    # --- reads ----------------------------------------------------------
    point_lookups: int = 0
    zero_result_lookups: int = 0
    range_lookups: int = 0
    secondary_range_lookups: int = 0
    bloom_probes: int = 0
    bloom_hash_computations: int = 0
    bloom_false_positives: int = 0
    lookup_pages_read: int = 0
    # Lookups answered from a range-tombstone block before any Bloom
    # probe or file visit (the pre-Bloom short-circuit).
    range_tombstone_skips: int = 0

    # --- secondary range deletes ----------------------------------------
    secondary_range_deletes: int = 0
    srd_pages_read: int = 0
    srd_pages_written: int = 0

    # --- background compaction scheduling -------------------------------
    background_compactions: int = 0
    compaction_preemptions: int = 0
    write_slowdowns: int = 0
    write_stalls: int = 0
    stall_seconds: float = 0.0

    # --- persistence tracking -------------------------------------------
    persistence_records: list[PersistenceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Not a dataclass field: merge()/snapshot() iterate fields and
        # must never try to sum a lock.
        self._lock = locks.OrderedLock("stats", locks.RANK_STATS)

    def add(self, **deltas: float) -> None:
        """Atomically bump the named counters (background-worker paths).

        ``stats.pages_written += n`` is a read-modify-write the
        interpreter may preempt between a compaction worker and the
        ingest thread; every counter a worker touches goes through here
        instead.
        """
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def record_tombstone_insert(self, key: object, now: float) -> PersistenceRecord:
        """Open a persistence record when a tombstone enters the buffer."""
        record = PersistenceRecord(key=key, inserted_at=now)
        with self._lock:
            self.persistence_records.append(record)
        return record

    # ------------------------------------------------------------------
    # Aggregation (cluster-wide metrics over sharded engines)
    # ------------------------------------------------------------------

    def merge(self, other: "Statistics") -> "Statistics":
        """Fold ``other``'s counters into this registry, in place.

        Every scalar counter adds up; persistence records concatenate (the
        record objects stay shared with ``other``, so latencies recorded
        later by the owning engine are visible through the merged view).
        The record list is snapshotted via ``list()`` so merging stays
        well-defined even if ``other``'s owner appends concurrently.
        Returns ``self`` for chaining.
        """
        with self._lock:
            for spec in fields(self):
                if spec.name == "persistence_records":
                    continue
                setattr(
                    self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
                )
            self.persistence_records.extend(list(other.persistence_records))
        return self

    @classmethod
    def combined(cls, parts: Iterable["Statistics"]) -> "Statistics":
        """A fresh registry holding the sum of ``parts`` (none is mutated)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # Derived metrics (the formulas of §3.2)
    # ------------------------------------------------------------------

    @property
    def total_bytes_written(self) -> int:
        """All bytes written to simulated disk: flushes plus compactions."""
        return self.bytes_flushed + self.compaction_bytes_written

    def write_amplification(self, new_bytes: int) -> float:
        """``w_amp = (csize(N+) - csize(N)) / csize(N)`` from §3.2.3.

        ``new_bytes`` is ``csize(N)``: the cumulative size of entries as
        first written (flushed); everything re-written by compactions on
        top of that is amplification.
        """
        if new_bytes <= 0:
            return 0.0
        return max(0.0, (self.total_bytes_written - new_bytes) / new_bytes)

    def persisted_latencies(self) -> list[float]:
        """Latencies of all tombstones that have persisted so far."""
        return [
            r.latency for r in self.persistence_records if r.latency is not None
        ]

    def unpersisted_count(self) -> int:
        """Number of tombstones still live (not yet compacted at last level)."""
        return sum(1 for r in self.persistence_records if r.persisted_at is None)

    def max_persistence_latency(self) -> float | None:
        """Largest observed persistence latency, or ``None`` if none yet."""
        latencies = self.persisted_latencies()
        return max(latencies) if latencies else None

    def average_lookup_ios(self) -> float:
        """Mean page I/Os per point lookup issued so far."""
        if self.point_lookups == 0:
            return 0.0
        return self.lookup_pages_read / self.point_lookups

    def simulated_io_seconds(self, page_io_seconds: float) -> float:
        """Total simulated time spent on page I/O (reads + writes)."""
        return (self.pages_read + self.pages_written) * page_io_seconds

    def simulated_hash_seconds(self, hash_seconds: float) -> float:
        """Total simulated time spent computing Bloom-filter hashes."""
        return self.bloom_hash_computations * hash_seconds

    def snapshot(self) -> dict:
        """A plain-dict copy of all scalar counters (for bench reporting).

        Taken under the internal lock: a snapshot racing a background
        worker's :meth:`add` must reflect one moment, never a mix of the
        counters before and after the worker's atomic bump (the
        reporting paths compare counters against each other).
        """
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "entries_ingested",
                    "point_tombstones_ingested",
                    "range_tombstones_ingested",
                    "blind_deletes_skipped",
                    "buffer_flushes",
                    "compactions",
                    "ttl_triggered_compactions",
                    "saturation_triggered_compactions",
                    "full_tree_compactions",
                    "compaction_bytes_read",
                    "compaction_bytes_written",
                    "compaction_entries_in",
                    "compaction_entries_out",
                    "tombstones_dropped",
                    "invalid_entries_purged",
                    "pages_read",
                    "pages_written",
                    "pages_dropped_full",
                    "pages_dropped_partial",
                    "bytes_flushed",
                    "cache_hits",
                    "cache_misses",
                    "point_lookups",
                    "zero_result_lookups",
                    "range_lookups",
                    "secondary_range_lookups",
                    "bloom_probes",
                    "bloom_hash_computations",
                    "bloom_false_positives",
                    "lookup_pages_read",
                    "range_tombstone_skips",
                    "secondary_range_deletes",
                    "srd_pages_read",
                    "srd_pages_written",
                    "background_compactions",
                    "compaction_preemptions",
                    "write_slowdowns",
                    "write_stalls",
                    "stall_seconds",
                )
            }

    def reset_read_counters(self) -> None:
        """Zero the read-path counters (used between load and query phases)."""
        self.point_lookups = 0
        self.zero_result_lookups = 0
        self.range_lookups = 0
        self.secondary_range_lookups = 0
        self.bloom_probes = 0
        self.bloom_hash_computations = 0
        self.bloom_false_positives = 0
        self.lookup_pages_read = 0
        self.range_tombstone_skips = 0
