"""The state-of-the-art leveled compaction policy (the paper's baseline).

Trigger: level saturation only. Selection: minimal overlap with the next
level (§2 "Partial Compaction" — the write-amplification-optimal choice),
or optionally RocksDB's tombstone-density heuristic (§3.1.3: "RocksDB
implements a file selection policy based on the number of tombstones.
This reduces the amount of invalid entries, but it does not offer
persistent delete latency guarantees.").
"""

from __future__ import annotations

from repro.core.config import CompactionTrigger, EngineConfig
from repro.lsm.tree import LSMTree

from repro.compaction.base import (
    CompactionPolicy,
    CompactionTask,
    pick_min_overlap,
    pick_most_tombstones,
    saturated_levels,
    span_is_busy,
)


class LeveledCompactionPolicy(CompactionPolicy):
    """Saturation-triggered, overlap-minimizing partial compaction."""

    def __init__(self, config: EngineConfig):
        self.config = config

    def select(
        self,
        tree: LSMTree,
        now: float,
        busy_levels: frozenset[int] = frozenset(),
    ) -> CompactionTask | None:
        trigger = (
            self.config.level1_run_trigger if self.config.level1_tiered else 0
        )
        for level_number in saturated_levels(tree, trigger):
            if span_is_busy(level_number, level_number + 1, busy_levels):
                continue
            level = tree.level(level_number)
            target = tree.ensure_level(level_number + 1)
            candidate = None
            if (
                self.config.rocksdb_tombstone_density_selection
                and level.tombstone_count() > 0
            ):
                candidate = pick_most_tombstones(level)
            if candidate is None:
                candidate = pick_min_overlap(level, target)
            if candidate is None:
                continue
            return CompactionTask(
                source_level=level_number,
                source_files=[candidate],
                target_level=level_number + 1,
                trigger=CompactionTrigger.SATURATION,
                description=f"saturation L{level_number}",
            )
        return None
