"""Byte-level codec for entries and pages.

The hot simulation path moves Python objects and *counts* declared bytes
(`Entry.size`); this module provides the real encoding those declared
sizes stand in for, and the test-suite cross-checks that a round-tripped
page reports byte counts consistent with the declared accounting. It also
documents the physical record shapes of §3.1 (left part of Figure 3):

``[key | tombstone flag | delete key | value]`` for key-value pairs, and
``[key | tombstone flag]`` for point tombstones — which is precisely why
the tombstone-size ratio λ is small.

The codec is deliberately restricted to the types the experiments use:
integer sort keys, integer delete keys, and ``bytes`` values. The durable
variants at the bottom (``encode_durable_*``) extend the same wire shapes
with a declared-size field and tagged value encodings so the persistence
backend (:mod:`repro.storage.persist`) can round-trip engine state
losslessly.
"""

from __future__ import annotations

import pickle
import struct

from repro.storage.entry import Entry, EntryKind, RangeTombstone

# Record wire format (little-endian):
#   header:   kind(1B)  seqnum(8B)  key(8B)  write_time(8B as f64)
#   put only: delete_key(8B)  value_len(4B)  value(bytes)
_HEADER = struct.Struct("<BqqD".replace("D", "d"))
_PUT_TAIL = struct.Struct("<qI")
_RANGE = struct.Struct("<qqqd")

_KIND_PUT = 0
_KIND_TOMBSTONE = 1


def encode_entry(entry: Entry) -> bytes:
    """Serialize one entry. Puts require ``bytes`` values and int keys."""
    if not isinstance(entry.key, int):
        raise TypeError(f"codec supports int sort keys, got {type(entry.key)}")
    if entry.is_tombstone:
        return _HEADER.pack(_KIND_TOMBSTONE, entry.seqnum, entry.key, entry.write_time)
    if not isinstance(entry.value, (bytes, bytearray)):
        raise TypeError(f"codec supports bytes values, got {type(entry.value)}")
    delete_key = entry.delete_key if entry.delete_key is not None else -1
    if not isinstance(delete_key, int):
        raise TypeError(f"codec supports int delete keys, got {type(delete_key)}")
    value = bytes(entry.value)
    return (
        _HEADER.pack(_KIND_PUT, entry.seqnum, entry.key, entry.write_time)
        + _PUT_TAIL.pack(delete_key, len(value))
        + value
    )


def decode_entry(data: bytes, offset: int = 0) -> tuple[Entry, int]:
    """Deserialize one entry at ``offset``; returns (entry, next_offset).

    The decoded entry's ``size`` is set to the *encoded* byte length so the
    declared-size accounting can be validated against real encodings.
    """
    kind, seqnum, key, write_time = _HEADER.unpack_from(data, offset)
    cursor = offset + _HEADER.size
    if kind == _KIND_TOMBSTONE:
        entry = Entry(
            key=key,
            seqnum=seqnum,
            kind=EntryKind.TOMBSTONE,
            size=cursor - offset,
            write_time=write_time,
        )
        return entry, cursor
    if kind != _KIND_PUT:
        raise ValueError(f"corrupt record: unknown kind byte {kind}")
    delete_key, value_len = _PUT_TAIL.unpack_from(data, cursor)
    cursor += _PUT_TAIL.size
    value = bytes(data[cursor : cursor + value_len])
    if len(value) != value_len:
        raise ValueError("corrupt record: truncated value")
    cursor += value_len
    entry = Entry(
        key=key,
        seqnum=seqnum,
        kind=EntryKind.PUT,
        value=value,
        delete_key=None if delete_key == -1 else delete_key,
        size=cursor - offset,
        write_time=write_time,
    )
    return entry, cursor


def encode_range_tombstone(tombstone: RangeTombstone) -> bytes:
    """Serialize one range tombstone (start, end, seqnum, write_time)."""
    if not isinstance(tombstone.start, int) or not isinstance(tombstone.end, int):
        raise TypeError("codec supports int sort keys for range tombstones")
    return _RANGE.pack(
        tombstone.start, tombstone.end, tombstone.seqnum, tombstone.write_time
    )


def decode_range_tombstone(data: bytes, offset: int = 0) -> tuple[RangeTombstone, int]:
    """Deserialize one range tombstone; returns (tombstone, next_offset)."""
    start, end, seqnum, write_time = _RANGE.unpack_from(data, offset)
    cursor = offset + _RANGE.size
    tombstone = RangeTombstone(
        start=start, end=end, seqnum=seqnum, size=_RANGE.size, write_time=write_time
    )
    return tombstone, cursor


# ---------------------------------------------------------------------------
# Durable records
# ---------------------------------------------------------------------------
#
# The in-memory codec above is the accounting cross-check: it requires the
# restricted types the experiments use (int keys, bytes values) and reports
# *encoded* sizes. The durable backend (:mod:`repro.storage.persist`) must
# round-trip whatever the engine holds — arbitrary picklable values, point
# tombstones with their configured sizes — and must preserve each record's
# *declared* size, because space-amplification accounting is defined over
# declared bytes. The durable wire format extends the header with the
# declared size and tags the value encoding.
#
#   header:  kind(1B) seqnum(8B) key(8B) write_time(8B f64) declared_size(4B)
#   put:     dkey_tag(1B) delete_key(8B) value_tag(1B) value_len(4B) value
#   range:   start(8B) end(8B) seqnum(8B) write_time(8B f64) declared_size(4B)

_FULL_HEADER = struct.Struct("<BqqdI")
_FULL_PUT = struct.Struct("<BqBI")
_FULL_RANGE = struct.Struct("<qqqdI")

_DKEY_NONE = 0
_DKEY_INT = 1
_VALUE_NONE = 0
_VALUE_BYTES = 1
_VALUE_PICKLE = 2


def pack_value(value) -> tuple[int, bytes]:
    """Tag-encode one value: ``(tag, payload)``.

    ``None`` and ``bytes`` get dedicated tags; anything else pickles.
    Shared by the durable record codec below and the network protocol
    (:mod:`repro.net.protocol`), so a value round-trips identically
    through the WAL and over a socket.
    """
    if value is None:
        return _VALUE_NONE, b""
    if isinstance(value, (bytes, bytearray)):
        return _VALUE_BYTES, bytes(value)
    return _VALUE_PICKLE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_value(tag: int, payload: bytes):
    """Invert :func:`pack_value`; raises ``ValueError`` on unknown tags."""
    if tag == _VALUE_NONE:
        return None
    if tag == _VALUE_BYTES:
        return bytes(payload)
    if tag == _VALUE_PICKLE:
        return pickle.loads(payload)
    raise ValueError(f"corrupt durable record: unknown value tag {tag}")


# Backwards-compatible aliases (the durable codec predates the public
# names; repro.net.protocol and new code use the public pair above).
_pack_value = pack_value
_unpack_value = unpack_value


def encode_durable_entry(entry: Entry) -> bytes:
    """Serialize one entry for the durable backend (lossless round-trip)."""
    if not isinstance(entry.key, int) or isinstance(entry.key, bool):
        raise TypeError(
            f"durable codec supports int sort keys, got {type(entry.key)}"
        )
    kind = _KIND_TOMBSTONE if entry.is_tombstone else _KIND_PUT
    header = _FULL_HEADER.pack(
        kind, entry.seqnum, entry.key, entry.write_time, entry.size
    )
    if entry.is_tombstone:
        return header
    if entry.delete_key is None:
        dkey_tag, dkey = _DKEY_NONE, 0
    elif isinstance(entry.delete_key, int) and not isinstance(entry.delete_key, bool):
        dkey_tag, dkey = _DKEY_INT, entry.delete_key
    else:
        raise TypeError(
            f"durable codec supports int delete keys, got {type(entry.delete_key)}"
        )
    value_tag, payload = _pack_value(entry.value)
    return header + _FULL_PUT.pack(dkey_tag, dkey, value_tag, len(payload)) + payload


def decode_durable_entry(data: bytes, offset: int = 0) -> tuple[Entry, int]:
    """Deserialize one durable entry; returns ``(entry, next_offset)``."""
    kind, seqnum, key, write_time, size = _FULL_HEADER.unpack_from(data, offset)
    cursor = offset + _FULL_HEADER.size
    if kind == _KIND_TOMBSTONE:
        entry = Entry(
            key=key,
            seqnum=seqnum,
            kind=EntryKind.TOMBSTONE,
            size=size,
            write_time=write_time,
        )
        return entry, cursor
    if kind != _KIND_PUT:
        raise ValueError(f"corrupt durable record: unknown kind byte {kind}")
    dkey_tag, dkey, value_tag, value_len = _FULL_PUT.unpack_from(data, cursor)
    cursor += _FULL_PUT.size
    payload = bytes(data[cursor : cursor + value_len])
    if len(payload) != value_len:
        raise ValueError("corrupt durable record: truncated value")
    cursor += value_len
    entry = Entry(
        key=key,
        seqnum=seqnum,
        kind=EntryKind.PUT,
        value=_unpack_value(value_tag, payload),
        delete_key=dkey if dkey_tag == _DKEY_INT else None,
        size=size,
        write_time=write_time,
    )
    return entry, cursor


def encode_durable_range_tombstone(tombstone: RangeTombstone) -> bytes:
    """Serialize one range tombstone preserving its declared size."""
    if not isinstance(tombstone.start, int) or not isinstance(tombstone.end, int):
        raise TypeError("durable codec supports int sort keys for range tombstones")
    return _FULL_RANGE.pack(
        tombstone.start,
        tombstone.end,
        tombstone.seqnum,
        tombstone.write_time,
        tombstone.size,
    )


def decode_durable_range_tombstone(
    data: bytes, offset: int = 0
) -> tuple[RangeTombstone, int]:
    """Deserialize one durable range tombstone; returns ``(rt, next_offset)``."""
    start, end, seqnum, write_time, size = _FULL_RANGE.unpack_from(data, offset)
    tombstone = RangeTombstone(
        start=start, end=end, seqnum=seqnum, size=size, write_time=write_time
    )
    return tombstone, offset + _FULL_RANGE.size


def encode_page(entries: list[Entry]) -> bytes:
    """Serialize a page: a 4-byte count then the concatenated records."""
    blob = struct.pack("<I", len(entries))
    for entry in entries:
        blob += encode_entry(entry)
    return blob


def decode_page(data: bytes) -> list[Entry]:
    """Deserialize a page produced by :func:`encode_page`."""
    (count,) = struct.unpack_from("<I", data, 0)
    cursor = 4
    entries: list[Entry] = []
    for _ in range(count):
        entry, cursor = decode_entry(data, cursor)
        entries.append(entry)
    if cursor != len(data):
        raise ValueError(f"trailing bytes after page: {len(data) - cursor}")
    return entries
