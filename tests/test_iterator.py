"""Unit and property tests for merge iterators and tombstone semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.iterator import (
    merge_for_compaction,
    merge_for_read,
    merge_sorted_streams,
    resolve_versions,
)
from repro.storage.entry import Entry, EntryKind, RangeTombstone


def put(key, seq):
    return Entry(key=key, seqnum=seq, kind=EntryKind.PUT, value=f"v{key}.{seq}")


def tomb(key, seq):
    return Entry(key=key, seqnum=seq, kind=EntryKind.TOMBSTONE)


def sorted_run(*entries):
    return iter(sorted(entries, key=lambda e: e.sort_token()))


class TestMergeSortedStreams:
    def test_orders_by_key_then_recency(self):
        a = sorted_run(put(1, 5), put(3, 1))
        b = sorted_run(put(1, 9), put(2, 2))
        merged = list(merge_sorted_streams([a, b]))
        assert [(e.key, e.seqnum) for e in merged] == [
            (1, 9), (1, 5), (2, 2), (3, 1),
        ]


class TestResolveVersions:
    def test_newest_version_per_key(self):
        merged = merge_sorted_streams(
            [sorted_run(put(1, 5)), sorted_run(put(1, 9), put(2, 1))]
        )
        resolved = list(resolve_versions(merged, []))
        assert [(e.key, e.seqnum) for e in resolved] == [(1, 9), (2, 1)]

    def test_range_tombstone_suppresses(self):
        merged = merge_sorted_streams([sorted_run(put(1, 5), put(9, 6))])
        rt = RangeTombstone(start=0, end=5, seqnum=100)
        resolved = list(resolve_versions(merged, [rt]))
        assert [e.key for e in resolved] == [9]


class TestCompactionMerge:
    def test_consolidates_duplicates(self):
        outcome = merge_for_compaction(
            [sorted_run(put(1, 1), put(2, 2)), sorted_run(put(1, 7))],
            [],
            into_last_level=False,
        )
        assert [(e.key, e.seqnum) for e in outcome.entries] == [(1, 7), (2, 2)]
        assert outcome.invalid_entries_dropped == 1

    def test_tombstone_retained_at_intermediate_level(self):
        """§3.1.1: a tombstone survives non-last-level compactions."""
        outcome = merge_for_compaction(
            [sorted_run(tomb(1, 9), put(2, 1)), sorted_run(put(1, 2))],
            [],
            into_last_level=False,
        )
        keys = [(e.key, e.is_tombstone) for e in outcome.entries]
        assert (1, True) in keys
        assert outcome.invalid_entries_dropped == 1  # the old put(1,2)

    def test_tombstone_dropped_at_last_level(self):
        """§3.1.1: compaction with the last level persists the delete."""
        outcome = merge_for_compaction(
            [sorted_run(tomb(1, 9)), sorted_run(put(1, 2), put(2, 3))],
            [],
            into_last_level=True,
        )
        assert [e.key for e in outcome.entries] == [2]
        assert [t.key for t in outcome.dropped_tombstones] == [1]

    def test_range_tombstone_drops_covered_and_survives(self):
        rt = RangeTombstone(start=0, end=10, seqnum=100)
        outcome = merge_for_compaction(
            [sorted_run(put(1, 5), put(15, 6))],
            [rt],
            into_last_level=False,
        )
        assert [e.key for e in outcome.entries] == [15]
        assert outcome.range_tombstones == [rt]
        assert outcome.invalid_entries_dropped == 1

    def test_range_tombstone_dropped_at_last_level(self):
        rt = RangeTombstone(start=0, end=10, seqnum=100)
        outcome = merge_for_compaction(
            [sorted_run(put(1, 5))], [rt], into_last_level=True
        )
        assert outcome.entries == []
        assert outcome.range_tombstones == []
        assert outcome.dropped_range_tombstones == [rt]

    def test_newer_put_survives_range_tombstone(self):
        rt = RangeTombstone(start=0, end=10, seqnum=50)
        outcome = merge_for_compaction(
            [sorted_run(put(1, 99))], [rt], into_last_level=False
        )
        assert [e.key for e in outcome.entries] == [1]

    def test_extra_cover_tombstones_drop_but_are_not_emitted(self):
        upper_rt = RangeTombstone(start=0, end=10, seqnum=100)
        outcome = merge_for_compaction(
            [sorted_run(put(1, 5), put(20, 6))],
            [],
            into_last_level=False,
            extra_cover_tombstones=[upper_rt],
        )
        assert [e.key for e in outcome.entries] == [20]
        assert outcome.range_tombstones == []  # not consumed here

    def test_tombstone_superseded_by_newer_put(self):
        """A put newer than the tombstone resurrects the key."""
        outcome = merge_for_compaction(
            [sorted_run(put(1, 9)), sorted_run(tomb(1, 5))],
            [],
            into_last_level=True,
        )
        assert [e.key for e in outcome.entries] == [1]
        assert outcome.dropped_tombstones == []  # superseded, not persisted
        assert outcome.invalid_entries_dropped == 1


class TestReadMerge:
    def test_suppresses_tombstoned_keys(self):
        result = merge_for_read(
            [sorted_run(tomb(1, 9), put(2, 3)), sorted_run(put(1, 2))],
            [],
        )
        assert [e.key for e in result] == [2]

    def test_applies_range_tombstones(self):
        rt = RangeTombstone(start=0, end=5, seqnum=100)
        result = merge_for_read([sorted_run(put(1, 3), put(7, 4))], [rt])
        assert [e.key for e in result] == [7]


# ----------------------------------------------------------------------
# Property: compaction merge output equals a model dict replay.
# ----------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "del"]),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=1,
    max_size=120,
)


@given(ops=_ops, runs=st.integers(min_value=1, max_value=5),
       last=st.booleans())
@settings(max_examples=80, deadline=None)
def test_property_merge_matches_model(ops, runs, last):
    """Splitting a history into runs and merging = replaying it in order."""
    entries = []
    model: dict[int, tuple[int, bool]] = {}
    for seq, (op, key) in enumerate(ops):
        entry = put(key, seq) if op == "put" else tomb(key, seq)
        entries.append(entry)
        model[key] = (seq, op == "del")
    # deal entries round-robin into runs; within a run keep one version
    # per key (the newest), as real runs do.
    per_run: list[dict[int, Entry]] = [dict() for _ in range(runs)]
    for index, entry in enumerate(entries):
        bucket = per_run[index % runs]
        held = bucket.get(entry.key)
        if held is None or entry.seqnum > held.seqnum:
            bucket[entry.key] = entry
    streams = [
        iter(sorted(bucket.values(), key=lambda e: e.sort_token()))
        for bucket in per_run
    ]
    outcome = merge_for_compaction(streams, [], into_last_level=last)
    got = {e.key: (e.seqnum, e.is_tombstone) for e in outcome.entries}
    if last:
        expected = {
            k: (seq, False) for k, (seq, deleted) in model.items() if not deleted
        }
    else:
        expected = model
    assert got == expected
    # survivors must be key-sorted
    keys = [e.key for e in outcome.entries]
    assert keys == sorted(keys)
