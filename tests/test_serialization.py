"""Unit and property tests for the byte codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.entry import Entry, EntryKind, RangeTombstone
from repro.storage.serialization import (
    decode_entry,
    decode_page,
    decode_range_tombstone,
    encode_entry,
    encode_page,
    encode_range_tombstone,
)


def test_put_round_trip():
    entry = Entry(
        key=42, seqnum=7, kind=EntryKind.PUT, value=b"hello", delete_key=99,
        size=1, write_time=1.5,
    )
    decoded, offset = decode_entry(encode_entry(entry))
    assert decoded.key == 42
    assert decoded.seqnum == 7
    assert decoded.value == b"hello"
    assert decoded.delete_key == 99
    assert decoded.write_time == 1.5
    assert offset == len(encode_entry(entry))


def test_tombstone_round_trip():
    entry = Entry(key=5, seqnum=1, kind=EntryKind.TOMBSTONE, write_time=0.25)
    decoded, _ = decode_entry(encode_entry(entry))
    assert decoded.is_tombstone
    assert decoded.key == 5
    assert decoded.write_time == 0.25


def test_tombstone_is_much_smaller_than_put():
    """The physical grounding of λ (§3.2.1): a tombstone is key+flag."""
    put = Entry(key=1, seqnum=0, kind=EntryKind.PUT, value=b"x" * 1000)
    tombstone = Entry(key=1, seqnum=0, kind=EntryKind.TOMBSTONE)
    ratio = len(encode_entry(tombstone)) / len(encode_entry(put))
    assert ratio < 0.05


def test_decoded_size_matches_encoding():
    entry = Entry(key=1, seqnum=0, kind=EntryKind.PUT, value=b"abc")
    blob = encode_entry(entry)
    decoded, _ = decode_entry(blob)
    assert decoded.size == len(blob)


def test_missing_delete_key_round_trips_as_none():
    entry = Entry(key=1, seqnum=0, kind=EntryKind.PUT, value=b"v")
    decoded, _ = decode_entry(encode_entry(entry))
    assert decoded.delete_key is None


def test_non_int_key_rejected():
    entry = Entry(key="text", seqnum=0, kind=EntryKind.PUT, value=b"v")
    with pytest.raises(TypeError):
        encode_entry(entry)


def test_non_bytes_value_rejected():
    entry = Entry(key=1, seqnum=0, kind=EntryKind.PUT, value="str")
    with pytest.raises(TypeError):
        encode_entry(entry)


def test_corrupt_kind_byte_rejected():
    entry = Entry(key=1, seqnum=0, kind=EntryKind.PUT, value=b"v")
    blob = bytearray(encode_entry(entry))
    blob[0] = 99
    with pytest.raises(ValueError):
        decode_entry(bytes(blob))


def test_truncated_value_rejected():
    entry = Entry(key=1, seqnum=0, kind=EntryKind.PUT, value=b"abcdef")
    blob = encode_entry(entry)
    with pytest.raises(ValueError):
        decode_entry(blob[:-3])


def test_range_tombstone_round_trip():
    rt = RangeTombstone(start=10, end=20, seqnum=5, write_time=2.0)
    decoded, _ = decode_range_tombstone(encode_range_tombstone(rt))
    assert (decoded.start, decoded.end, decoded.seqnum) == (10, 20, 5)
    assert decoded.write_time == 2.0


def test_page_round_trip():
    entries = [
        Entry(key=i, seqnum=i, kind=EntryKind.PUT, value=bytes([i]) * i)
        for i in range(1, 5)
    ]
    decoded = decode_page(encode_page(entries))
    assert [e.key for e in decoded] == [1, 2, 3, 4]
    assert [e.value for e in decoded] == [e.value for e in entries]


def test_page_trailing_bytes_rejected():
    blob = encode_page(
        [Entry(key=1, seqnum=0, kind=EntryKind.PUT, value=b"v")]
    )
    with pytest.raises(ValueError):
        decode_page(blob + b"junk")


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.integers(min_value=0, max_value=2**62),
            st.binary(max_size=64),
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**62)),
        ),
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_page_round_trip(raw):
    entries = [
        Entry(key=key, seqnum=seq, kind=EntryKind.PUT, value=value,
              delete_key=dkey)
        for key, seq, value, dkey in raw
    ]
    decoded = decode_page(encode_page(entries))
    assert len(decoded) == len(entries)
    for original, got in zip(entries, decoded):
        assert got.key == original.key
        assert got.seqnum == original.seqnum
        assert got.value == bytes(original.value)
        assert got.delete_key == original.delete_key
