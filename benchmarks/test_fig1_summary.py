"""Bench for Figure 1: the qualitative positioning, from measured data.

Reproduces Fig 1A's radar axes (lookup cost, delete persistence, space
amplification, write amplification) as measured ratios between the
state-of-the-art baseline and Lethe at 10% deletes.
"""

from repro.bench import experiments as ex
from repro.bench.harness import BENCH_SCALE

from benchmarks.conftest import emit


def test_fig1_summary(benchmark):
    result = benchmark.pedantic(
        lambda: ex.fig1_summary(BENCH_SCALE, delete_fraction=0.10),
        rounds=1,
        iterations=1,
    )
    emit(result)
    s = result.series
    assert s["lethe_samp"] <= s["baseline_samp"]
    assert s["lethe_persistence_age"] <= s["d_th"] * 1.5
