"""A disk level: one sorted run (leveling) or up to T runs (tiering).

§2: "In leveling, each level may have at most one run ... With tiering,
every level must accumulate T runs before they are sort-merged." A run is
a list of files with disjoint sort-key ranges (§2 "Partial Compaction");
runs within a tiered level may overlap each other and are ordered newest
first for reads.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.errors import CompactionError
from repro.lsm.runfile import RunFile


class Level:
    """One disk level of the tree.

    Parameters
    ----------
    number:
        1-based disk level number.
    capacity_entries:
        Nominal capacity (``M · T^number / E`` in entries); the saturation
        trigger compares against this.
    """

    def __init__(self, number: int, capacity_entries: int):
        if number < 1:
            raise ValueError(f"disk levels are 1-based, got {number}")
        if capacity_entries < 1:
            raise ValueError(f"capacity must be positive, got {capacity_entries}")
        self.number = number
        self.capacity_entries = capacity_entries
        # runs[0] is the most recent run; leveling keeps exactly one run.
        self.runs: list[list[RunFile]] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_run(self, files: list[RunFile]) -> None:
        """Install a new (most recent) run — tiering ingest path.

        Like every mutator here, the run list is rebuilt and swapped in a
        single assignment: a reader that grabbed ``self.runs`` just
        before the swap keeps a fully consistent (if momentarily stale)
        view — the contract background compaction installs rely on (see
        :meth:`~repro.lsm.tree.LSMTree.read_view`).
        """
        if not files:
            return
        for run_file in files:
            run_file.meta.level = self.number
        self.runs = [list(files)] + self.runs

    def merge_into_single_run(self, files: list[RunFile]) -> None:
        """Replace all runs with one run — leveling ingest path."""
        for run_file in files:
            run_file.meta.level = self.number
        self.runs = [sorted(files, key=lambda f: f.min_key)] if files else []
        self._validate_single_run()

    def insert_into_run(self, files: list[RunFile]) -> None:
        """Merge files into the level's single run (partial compaction).

        The incoming files must not overlap the files that remain; the
        caller removed the overlapping victims before installing output.
        """
        if len(self.runs) > 1:
            raise CompactionError(
                f"insert_into_run on tiered level {self.number} with "
                f"{len(self.runs)} runs"
            )
        current = self.runs[0] if self.runs else []
        for run_file in files:
            run_file.meta.level = self.number
        merged = sorted(current + list(files), key=lambda f: f.min_key)
        self.runs = [merged] if merged else []
        self._validate_single_run()

    def remove_files(self, victims: list[RunFile]) -> None:
        """Remove files (compaction inputs) from whichever runs hold them."""
        victim_ids = {id(f) for f in victims}
        new_runs: list[list[RunFile]] = []
        for run in self.runs:
            remaining = [f for f in run if id(f) not in victim_ids]
            victim_ids -= {id(f) for f in run if id(f) in victim_ids}
            if remaining:
                new_runs.append(remaining)
        if victim_ids:
            raise CompactionError(
                f"{len(victim_ids)} victim files not found in level {self.number}"
            )
        self.runs = new_runs

    def _validate_single_run(self) -> None:
        """Leveled runs must have disjoint entry ranges."""
        if not self.runs:
            return
        run = self.runs[0]
        for left, right in zip(run, run[1:]):
            if left.meta.num_entries == 0 or right.meta.num_entries == 0:
                continue
            if left.max_key >= right.min_key and left.overlaps(right):
                # Bounds widened by range tombstones may touch; entries must
                # not interleave, which builder validation already enforced.
                # Only flag clear entry-range inversions.
                if left.max_key > right.max_key:
                    raise CompactionError(
                        f"level {self.number} run out of order: "
                        f"{left!r} vs {right!r}"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def files(self) -> Iterator[RunFile]:
        """All files, most recent run first, S-order within a run."""
        for run in self.runs:
            yield from run

    @property
    def file_count(self) -> int:
        return sum(len(run) for run in self.runs)

    @property
    def run_count(self) -> int:
        return len(self.runs)

    @property
    def num_entries(self) -> int:
        return sum(f.meta.num_entries for f in self.files())

    @property
    def size_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files())

    @property
    def is_empty(self) -> bool:
        return not self.runs

    def is_saturated(self) -> bool:
        """Level past its nominal capacity (§4.1.4 saturation trigger)."""
        return self.num_entries > self.capacity_entries

    def overlapping_files(self, lo: Any, hi: Any) -> list[RunFile]:
        """Files (any run) whose key range intersects ``[lo, hi]``."""
        return [f for f in self.files() if f.overlaps_range(lo, hi)]

    def tombstone_count(self) -> int:
        return sum(f.tombstone_count for f in self.files())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Level({self.number}: {self.file_count} files / {self.run_count} runs, "
            f"{self.num_entries}/{self.capacity_entries} entries)"
        )
