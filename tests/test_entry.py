"""Unit tests for the entry model: puts, tombstones, range tombstones."""

import pytest

from repro.storage.entry import (
    Entry,
    EntryKind,
    RangeTombstone,
    SequenceGenerator,
    latest_wins,
)


def put(key, seq, **kw):
    return Entry(key=key, seqnum=seq, kind=EntryKind.PUT, value=f"v{seq}", **kw)


def tomb(key, seq, **kw):
    return Entry(key=key, seqnum=seq, kind=EntryKind.TOMBSTONE, **kw)


class TestEntry:
    def test_put_fields(self):
        entry = put(5, 1, delete_key=77, size=1024)
        assert not entry.is_tombstone
        assert entry.delete_key == 77
        assert entry.size == 1024

    def test_tombstone_has_no_value(self):
        assert tomb(5, 1).value is None

    def test_tombstone_with_value_rejected(self):
        with pytest.raises(ValueError):
            Entry(key=1, seqnum=0, kind=EntryKind.TOMBSTONE, value="x")

    def test_negative_seqnum_rejected(self):
        with pytest.raises(ValueError):
            put(1, -1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Entry(key=1, seqnum=0, kind=EntryKind.PUT, size=0)

    def test_supersedes_same_key_newer(self):
        assert put(1, 5).supersedes(put(1, 3))
        assert not put(1, 3).supersedes(put(1, 5))
        assert not put(2, 9).supersedes(put(1, 3))  # different key

    def test_tombstone_supersedes_put(self):
        assert tomb(1, 5).supersedes(put(1, 3))

    def test_sort_token_orders_newest_first_within_key(self):
        entries = [put(1, 1), put(1, 9), put(0, 4)]
        ordered = sorted(entries, key=lambda e: e.sort_token())
        assert [(e.key, e.seqnum) for e in ordered] == [(0, 4), (1, 9), (1, 1)]


class TestRangeTombstone:
    def test_covers_older_in_range(self):
        rt = RangeTombstone(start=10, end=20, seqnum=100)
        assert rt.covers(10, 50)
        assert rt.covers(19, 99)
        assert not rt.covers(20, 50)   # end-exclusive
        assert not rt.covers(9, 50)    # below range
        assert not rt.covers(15, 100)  # same seqnum is not older
        assert not rt.covers(15, 101)  # newer survives

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeTombstone(start=5, end=5, seqnum=0)
        with pytest.raises(ValueError):
            RangeTombstone(start=6, end=5, seqnum=0)

    def test_overlaps_keys(self):
        rt = RangeTombstone(start=10, end=20, seqnum=0)
        assert rt.overlaps_keys(0, 10)
        assert rt.overlaps_keys(19, 30)
        assert rt.overlaps_keys(12, 13)
        assert not rt.overlaps_keys(20, 30)  # end-exclusive
        assert not rt.overlaps_keys(0, 9)


class TestSequenceGenerator:
    def test_monotonic(self):
        gen = SequenceGenerator()
        values = [gen.next() for _ in range(10)]
        assert values == list(range(10))
        assert gen.current == 10


class TestLatestWins:
    def test_picks_highest_seqnum(self):
        winner = latest_wins([put(1, 3), tomb(1, 7), put(1, 5)])
        assert winner.seqnum == 7
        assert winner.is_tombstone

    def test_single_entry(self):
        entry = put(1, 0)
        assert latest_wins([entry]) is entry

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latest_wins([])

    def test_mixed_keys_rejected(self):
        with pytest.raises(ValueError):
            latest_wins([put(1, 0), put(2, 1)])
