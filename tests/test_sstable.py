"""Unit tests for the classic SSTable layout."""

import pytest

from repro.core.config import rocksdb_config
from repro.core.stats import Statistics
from repro.lsm.sstable import build_sstable
from repro.storage.disk import SimulatedDisk
from repro.storage.entry import EntryKind, RangeTombstone

from tests.conftest import TINY, make_entries


@pytest.fixture
def config():
    return rocksdb_config(**TINY)


def build(entries, rts=(), config=None, disk=None, stats=None, now=0.0, level=1):
    stats = stats or Statistics()
    disk = disk or SimulatedDisk(stats)
    config = config or rocksdb_config(**TINY)
    return (
        build_sstable(entries, list(rts), config, disk, stats, now, level),
        disk,
        stats,
    )


class TestBuild:
    def test_pages_and_metadata(self, config):
        entries = make_entries(range(10))
        table, disk, _ = build(entries, config=config)
        assert table.num_pages == 3  # 10 entries / B=4
        assert table.meta.num_entries == 10
        assert table.min_key == 0
        assert table.max_key == 9
        assert disk.live_files == 1

    def test_capacity_enforced(self, config):
        entries = make_entries(range(config.file_entries + 1))
        with pytest.raises(ValueError):
            build(entries, config=config)

    def test_tombstone_metadata(self, config):
        puts = make_entries([1, 2])
        tombs = make_entries([5], seq_start=10, kind=EntryKind.TOMBSTONE,
                             write_time=3.0)
        table, _, _ = build(puts + tombs, config=config)
        assert table.meta.num_point_tombstones == 1
        assert table.meta.oldest_tombstone_time == 3.0
        assert table.meta.amax(now=10.0) == pytest.approx(7.0)
        assert table.meta.has_tombstones

    def test_no_tombstones_amax_zero(self, config):
        table, _, _ = build(make_entries([1, 2]), config=config)
        assert table.meta.amax(now=100.0) == 0.0

    def test_range_tombstone_widens_bounds(self, config):
        entries = make_entries([10, 11])
        rt = RangeTombstone(start=0, end=100, seqnum=50, write_time=1.0)
        table, _, _ = build(entries, [rt], config=config)
        assert table.min_key == 0
        assert table.max_key == 100
        assert table.meta.num_range_tombstones == 1
        assert table.meta.oldest_tombstone_time == 1.0

    def test_empty_file_rejected(self, config):
        with pytest.raises(ValueError):
            build([], config=config)


class TestGet:
    def test_hit_costs_one_io(self, config):
        entries = make_entries(range(20))
        table, disk, stats = build(entries, config=config)
        result = table.get(7)
        assert result.entry.key == 7
        assert stats.pages_read == 1
        assert stats.lookup_pages_read == 1

    def test_bloom_negative_costs_no_io(self, config):
        entries = make_entries(range(0, 100, 7))
        table, disk, stats = build(entries, config=config)
        misses = 0
        for probe in range(1, 100, 7):  # keys not present but inside range
            result = table.get(probe)
            assert result.entry is None
            misses += 1
        # Nearly all misses should be stopped by the filter without I/O.
        assert stats.pages_read <= misses * 0.3

    def test_out_of_bounds_key_skips_filter(self, config):
        table, _, stats = build(make_entries([10, 20]), config=config)
        assert table.get(5).entry is None
        assert stats.bloom_probes == 0

    def test_uncharged_get(self, config):
        table, _, stats = build(make_entries(range(8)), config=config)
        table.get(3, charge_io=False)
        assert stats.pages_read == 0

    def test_covering_rt_reported(self, config):
        rt = RangeTombstone(start=0, end=50, seqnum=99)
        table, _, _ = build(make_entries(range(8)), [rt], config=config)
        result = table.get(3)
        assert result.covering_rt_seqnum == 99
        result = table.get(60) if table.max_key >= 60 else None
        # key 60 is outside entry bounds but rt widened max to 50 → skip

    def test_multiple_rts_reports_newest(self, config):
        rts = [
            RangeTombstone(start=0, end=50, seqnum=10),
            RangeTombstone(start=0, end=20, seqnum=30),
        ]
        table, _, _ = build(make_entries(range(8)), rts, config=config)
        assert table.get(3).covering_rt_seqnum == 30
        assert table.get(25).covering_rt_seqnum == 10


class TestScan:
    def test_scan_range(self, config):
        table, _, stats = build(make_entries(range(0, 40, 2)), config=config)
        hits = table.scan(10, 20)
        assert [e.key for e in hits] == [10, 12, 14, 16, 18, 20]
        assert stats.pages_read >= 1

    def test_scan_outside_costs_nothing(self, config):
        table, _, stats = build(make_entries(range(10)), config=config)
        assert table.scan(100, 200) == []
        assert stats.pages_read == 0


class TestIterationAndSizes:
    def test_entries_in_order(self, config):
        entries = make_entries(range(12))
        table, _, _ = build(entries, config=config)
        assert [e.key for e in table.entries()] == list(range(12))

    def test_size_bytes_counts_rts(self, config):
        entries = make_entries([1, 2], size=100)
        rt = RangeTombstone(start=0, end=9, seqnum=5, size=31)
        table, _, _ = build(entries, [rt], config=config)
        assert table.size_bytes == 231

    def test_overlaps(self, config):
        a, _, _ = build(make_entries(range(0, 10)), config=config)
        b, _, _ = build(make_entries(range(5, 15)), config=config)
        c, _, _ = build(make_entries(range(20, 30)), config=config)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.overlaps_range(9, 100)
        assert not a.overlaps_range(10, 100)

    def test_might_contain(self, config):
        table, _, _ = build(make_entries(range(0, 40, 4)), config=config)
        assert table.might_contain(8)
        assert not table.might_contain(1000)  # out of bounds
