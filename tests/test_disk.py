"""Unit tests for the simulated disk's accounting."""

import pytest

from repro.core.errors import StorageError
from repro.core.stats import Statistics
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(Statistics())


class TestAllocation:
    def test_allocate_and_free(self, disk):
        fid = disk.allocate(pages=10, size_bytes=1000)
        assert disk.live_files == 1
        assert disk.live_pages == 10
        assert disk.live_bytes == 1000
        disk.free(fid)
        assert disk.live_files == 0

    def test_double_free_rejected(self, disk):
        fid = disk.allocate(1, 10)
        disk.free(fid)
        with pytest.raises(StorageError):
            disk.free(fid)

    def test_negative_allocation_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.allocate(-1, 0)

    def test_unique_file_ids(self, disk):
        ids = {disk.allocate(1, 1) for _ in range(10)}
        assert len(ids) == 10


class TestShrink:
    """Full page drops release extents without I/O (§4.2.2)."""

    def test_shrink_reduces_extent(self, disk):
        fid = disk.allocate(10, 1000)
        disk.shrink(fid, dropped_pages=4, dropped_bytes=400)
        assert disk.extent(fid).pages == 6
        assert disk.extent(fid).size_bytes == 600
        assert disk.stats.pages_read == 0  # no I/O charged

    def test_shrink_beyond_extent_rejected(self, disk):
        fid = disk.allocate(2, 100)
        with pytest.raises(StorageError):
            disk.shrink(fid, 3, 0)

    def test_shrink_unknown_file_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.shrink(999, 1, 1)

    def test_bytes_clamped_at_zero(self, disk):
        fid = disk.allocate(4, 100)
        disk.shrink(fid, 1, 500)
        assert disk.extent(fid).size_bytes == 0


class TestCharging:
    def test_reads_and_writes_charged(self, disk):
        disk.charge_read(3)
        disk.charge_write(2)
        assert disk.stats.pages_read == 3
        assert disk.stats.pages_written == 2

    def test_negative_charges_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.charge_read(-1)
        with pytest.raises(StorageError):
            disk.charge_write(-1)

    def test_stats_shared(self):
        stats = Statistics()
        disk = SimulatedDisk(stats)
        disk.charge_read(1)
        assert stats.pages_read == 1

    def test_default_stats_created(self):
        disk = SimulatedDisk()
        disk.charge_write(1)
        assert disk.stats.pages_written == 1
