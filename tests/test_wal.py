"""Unit tests for the WAL, including FADE's D_th enforcement routine."""

import pytest

from repro.core.errors import WALError
from repro.lsm.wal import WriteAheadLog


class TestAppend:
    def test_appends_create_segments(self):
        wal = WriteAheadLog(segment_capacity=2)
        for seq in range(5):
            wal.append(seq, key=seq, is_tombstone=False, now=float(seq))
        assert len(wal.segments) == 3
        assert wal.live_records == 5

    def test_append_below_watermark_rejected(self):
        wal = WriteAheadLog()
        wal.append(0, key=1, is_tombstone=False, now=0.0)
        wal.mark_flushed(0)
        with pytest.raises(WALError):
            wal.append(0, key=2, is_tombstone=False, now=1.0)

    def test_invalid_capacity(self):
        with pytest.raises(WALError):
            WriteAheadLog(segment_capacity=0)


class TestFlushPurge:
    def test_fully_flushed_segments_purged(self):
        wal = WriteAheadLog(segment_capacity=2)
        for seq in range(6):
            wal.append(seq, key=seq, is_tombstone=False, now=0.0)
        wal.mark_flushed(3)
        # segments [0,1] and [2,3] are wholly flushed; [4,5] survives
        assert wal.live_records == 2
        assert wal.segments_purged == 2

    def test_watermark_cannot_regress(self):
        wal = WriteAheadLog()
        wal.mark_flushed(10)
        with pytest.raises(WALError):
            wal.mark_flushed(5)


class TestDthEnforcement:
    """§4.1.5: no live WAL may retain records older than D_th."""

    def test_over_age_segments_rewritten(self):
        wal = WriteAheadLog(segment_capacity=4)
        wal.append(0, key=1, is_tombstone=True, now=0.0)
        wal.append(1, key=2, is_tombstone=False, now=0.5)
        rewritten = wal.enforce_persistence_threshold(now=10.0, d_th=5.0)
        assert rewritten == 1
        # live records were copied forward; the old segment is gone
        assert wal.live_records == 2
        assert wal.oldest_segment_age(now=10.0) == 0.0

    def test_flushed_tombstones_discarded_by_routine(self):
        wal = WriteAheadLog(segment_capacity=4)
        wal.append(0, key=1, is_tombstone=True, now=0.0)
        wal.mark_flushed(0)  # tombstone persisted to the tree
        # segment was purged by the flush already
        assert wal.live_records == 0
        wal.append(1, key=2, is_tombstone=True, now=1.0)
        wal.enforce_persistence_threshold(now=20.0, d_th=5.0)
        assert wal.oldest_tombstone_age(now=20.0) <= 5.0 + 19.0  # copied fwd

    def test_young_segments_untouched(self):
        wal = WriteAheadLog()
        wal.append(0, key=1, is_tombstone=True, now=8.0)
        assert wal.enforce_persistence_threshold(now=10.0, d_th=5.0) == 0
        assert wal.live_records == 1

    def test_invariant_no_segment_older_than_dth_after_enforcement(self):
        wal = WriteAheadLog(segment_capacity=1)
        for seq in range(10):
            wal.append(seq, key=seq, is_tombstone=(seq % 2 == 0), now=seq * 1.0)
        wal.enforce_persistence_threshold(now=20.0, d_th=3.0)
        assert wal.oldest_segment_age(now=20.0) <= 3.0

    def test_invalid_dth_rejected(self):
        wal = WriteAheadLog()
        with pytest.raises(WALError):
            wal.enforce_persistence_threshold(now=1.0, d_th=0.0)


class TestVoidTombstone:
    """Regression: a superseded tombstone must not age in the log forever.

    A buffered point tombstone overwritten by a newer put carries no
    delete intent; before ``void_tombstone`` existed, the D_th routine
    copied the dead intent to every fresh segment, so the record-level
    half of §4.1.5 ("no tombstone older than D_th in any log segment")
    could never be met once a delete was overwritten in place.
    """

    def test_void_clears_the_flag_but_keeps_the_record(self):
        wal = WriteAheadLog()
        wal.append(0, key=1, is_tombstone=True, now=0.0)
        wal.append(1, key=1, is_tombstone=False, now=0.1)
        assert wal.oldest_tombstone_age(now=10.0) == 10.0
        wal.void_tombstone(0)
        assert wal.oldest_tombstone_age(now=10.0) == 0.0
        assert wal.live_records == 2  # replay history is intact

    def test_void_of_flushed_or_unknown_seqnum_is_a_noop(self):
        wal = WriteAheadLog()
        wal.append(0, key=1, is_tombstone=True, now=0.0)
        wal.void_tombstone(99)
        assert wal.oldest_tombstone_age(now=5.0) == 5.0

    def test_rewrite_drops_the_voided_intent_from_the_age_metric(self):
        wal = WriteAheadLog(segment_capacity=2)
        wal.append(0, key=1, is_tombstone=True, now=0.0)
        wal.append(1, key=1, is_tombstone=False, now=0.1)
        wal.void_tombstone(0)
        wal.enforce_persistence_threshold(now=20.0, d_th=5.0)
        # Both records were copied forward (still live), but no record
        # counts as a tombstone any more.
        assert wal.live_records == 2
        assert wal.oldest_tombstone_age(now=20.0) == 0.0
