"""Multi-tenant skewed workload: many key ranges, very unequal traffic.

A production cluster rarely sees the uniform single-tenant stream of §5:
it serves many tenants, each owning a contiguous slice of the keyspace,
with traffic following a heavy-tailed popularity distribution. This
module generates exactly that — the workload that stresses *hot shards*:

* under a :class:`~repro.shard.partitioner.RangePartitioner` cut at
  tenant boundaries (:meth:`MultiTenantSpec.split_points`), hot tenants
  concentrate on few shards (the case for :meth:`ShardedEngine.split`);
* under a :class:`~repro.shard.partitioner.HashPartitioner` the same
  stream spreads evenly — the trade-off the shard-scaling bench measures.

Delete keys are global insertion timestamps (the paper's DComp scenario),
so one ``secondary_range_delete`` of a time window is a scatter-gather
purge touching every tenant and every shard at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a key slice plus its traffic profile.

    Attributes
    ----------
    name:
        Identifier used in reports.
    key_range:
        Half-open ``[lo, hi)`` slice of the sort-key domain this tenant
        owns; tenants must not overlap.
    weight:
        Relative share of the operation stream (need not normalize).
    update_fraction:
        Updates to this tenant's existing keys, as a fraction of its
        write operations.
    delete_fraction:
        Point deletes of this tenant's live keys, as a fraction of its
        inserts.
    """

    name: str
    key_range: tuple[int, int]
    weight: float = 1.0
    update_fraction: float = 0.5
    delete_fraction: float = 0.05

    def __post_init__(self) -> None:
        lo, hi = self.key_range
        if lo >= hi:
            raise ConfigError(f"tenant {self.name}: empty key range {self.key_range}")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name}: weight must be > 0")
        if not (0.0 <= self.update_fraction < 1.0):
            raise ConfigError(f"tenant {self.name}: update_fraction in [0, 1)")
        if not (0.0 <= self.delete_fraction <= 1.0):
            raise ConfigError(f"tenant {self.name}: delete_fraction in [0, 1]")


@dataclass(frozen=True)
class MultiTenantSpec:
    """A whole cluster's workload: tenants plus global sizes.

    ``num_inserts`` is the total fresh-key volume across tenants, divided
    by weight; lookups likewise. Deterministic given ``seed``.
    """

    tenants: tuple[TenantSpec, ...]
    num_inserts: int = 10_000
    num_point_lookups: int = 0
    num_range_lookups: int = 0
    range_lookup_selectivity: float = 0.05
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("need at least one tenant")
        if self.num_inserts < len(self.tenants):
            raise ConfigError(
                f"num_inserts={self.num_inserts} cannot cover "
                f"{len(self.tenants)} tenants"
            )
        ordered = sorted(self.tenants, key=lambda t: t.key_range)
        for left, right in zip(ordered, ordered[1:]):
            if left.key_range[1] > right.key_range[0]:
                raise ConfigError(
                    f"tenants {left.name} and {right.name} overlap: "
                    f"{left.key_range} vs {right.key_range}"
                )

    @classmethod
    def skewed(
        cls,
        n_tenants: int = 8,
        keys_per_tenant: int = 1 << 20,
        skew: float = 2.0,
        **kwargs,
    ) -> "MultiTenantSpec":
        """Tenants with geometrically decaying weights (tenant 0 hottest).

        ``skew`` is the weight ratio between consecutive tenants; 1.0
        degenerates to uniform traffic.
        """
        if n_tenants < 1:
            raise ConfigError(f"n_tenants must be >= 1, got {n_tenants}")
        if skew < 1.0:
            raise ConfigError(f"skew must be >= 1.0, got {skew}")
        tenants = tuple(
            TenantSpec(
                name=f"tenant-{index}",
                key_range=(index * keys_per_tenant, (index + 1) * keys_per_tenant),
                weight=skew ** (n_tenants - 1 - index),
            )
            for index in range(n_tenants)
        )
        return cls(tenants=tenants, **kwargs)

    def split_points(self) -> list[int]:
        """Tenant boundaries, usable directly as range-partitioner cuts."""
        ordered = sorted(self.tenants, key=lambda t: t.key_range)
        return [tenant.key_range[0] for tenant in ordered[1:]]

    def hottest(self) -> TenantSpec:
        return max(self.tenants, key=lambda t: t.weight)


class MultiTenantWorkload:
    """Deterministic operation-stream factory for one :class:`MultiTenantSpec`.

    Emits the same tuple vocabulary as
    :class:`~repro.workloads.generator.WorkloadGenerator`, so streams feed
    ``LSMEngine.ingest`` and ``ShardedEngine.ingest`` interchangeably.
    Iterating :meth:`ingest_operations` populates per-tenant key state the
    query phase then samples.
    """

    def __init__(self, spec: MultiTenantSpec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._timestamp = 0
        self._tenant_indexes = list(range(len(spec.tenants)))
        self._weights = [tenant.weight for tenant in spec.tenants]
        self.inserted: list[list[int]] = [[] for _ in spec.tenants]
        self._inserted_sets: list[set[int]] = [set() for _ in spec.tenants]
        self._live: list[set[int]] = [set() for _ in spec.tenants]

    # ------------------------------------------------------------------
    # Ingest phase
    # ------------------------------------------------------------------

    def ingest_operations(self) -> Iterator[tuple]:
        """Inserts, updates, and deletes interleaved across tenants."""
        spec = self.spec
        update_credit = [0.0] * len(spec.tenants)
        delete_credit = [0.0] * len(spec.tenants)
        for _ in range(spec.num_inserts):
            index = self._pick_tenant()
            tenant = spec.tenants[index]
            key = self._fresh_key(index)
            self.inserted[index].append(key)
            self._inserted_sets[index].add(key)
            self._live[index].add(key)
            yield ("put", key, self._value_for(key), self._next_timestamp())

            update_credit[index] += (
                tenant.update_fraction / (1.0 - tenant.update_fraction)
                if tenant.update_fraction
                else 0.0
            )
            while update_credit[index] >= 1.0:
                update_credit[index] -= 1.0
                victim = self._pick_inserted(index)
                if victim in self._live[index]:
                    yield (
                        "put",
                        victim,
                        self._value_for(victim),
                        self._next_timestamp(),
                    )

            delete_credit[index] += tenant.delete_fraction
            if delete_credit[index] >= 1.0 and self._live[index]:
                delete_credit[index] -= 1.0
                victim = self._pick_live(index)
                if victim is not None:
                    self._live[index].discard(victim)
                    yield ("delete", victim)

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------

    def query_operations(self) -> Iterator[tuple]:
        """Point lookups (tenant-weighted) plus in-tenant range scans."""
        spec = self.spec
        for _ in range(spec.num_point_lookups):
            index = self._pick_tenant()
            if not self.inserted[index]:
                continue
            key = self.inserted[index][
                self._rng.randrange(len(self.inserted[index]))
            ]
            yield ("get", key)
        for _ in range(spec.num_range_lookups):
            index = self._pick_tenant()
            lo, hi = spec.tenants[index].key_range
            width = max(1, int((hi - lo) * spec.range_lookup_selectivity))
            start = self._rng.randint(lo, max(lo, hi - width))
            yield ("scan", start, start + width)

    def all_operations(self) -> Iterator[tuple]:
        yield from self.ingest_operations()
        yield from self.query_operations()

    # ------------------------------------------------------------------
    # Time-window purges (the scatter-gather case)
    # ------------------------------------------------------------------

    @property
    def latest_timestamp(self) -> int:
        """Largest delete key issued so far (timestamps are global)."""
        return self._timestamp

    def retention_window(self, fraction: float) -> tuple[int, int]:
        """The oldest ``fraction`` of all timestamps, as an SRD interval."""
        if not (0.0 < fraction <= 1.0):
            raise ConfigError(f"fraction must lie in (0, 1], got {fraction}")
        return (0, max(1, int(self._timestamp * fraction)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pick_tenant(self) -> int:
        return self._rng.choices(self._tenant_indexes, weights=self._weights)[0]

    def _fresh_key(self, index: int) -> int:
        lo, hi = self.spec.tenants[index].key_range
        used = self._inserted_sets[index]
        key = self._rng.randrange(lo, hi)
        while key in used:
            key = self._rng.randrange(lo, hi)
        return key

    def _pick_inserted(self, index: int) -> int:
        keys = self.inserted[index]
        return keys[self._rng.randrange(len(keys))]

    def _pick_live(self, index: int) -> int | None:
        for _ in range(16):
            candidate = self._pick_inserted(index)
            if candidate in self._live[index]:
                return candidate
        for candidate in self.inserted[index]:
            if candidate in self._live[index]:
                return candidate
        return None

    def _value_for(self, key: int) -> str:
        return f"value-{key}-{self._rng.randrange(1 << 30)}"

    def _next_timestamp(self) -> int:
        self._timestamp += 1
        return self._timestamp
