"""Observability: latency histograms, span tracing, live sampling.

One :class:`Observability` object per engine (or cluster) bundles the
three instruments and a single ``enabled`` flag the hot paths branch on:

* a :class:`~repro.obs.metrics.MetricsRegistry` with pre-bound
  histograms for the per-operation write/read paths and the WAL
  group-commit drain (attribute access, no dict lookup per op);
* a span tracer — the process-global ring from :mod:`repro.obs.trace`
  when enabled, :data:`~repro.obs.trace.NULL_TRACER` when not, so a
  disabled engine pays one attribute load per ``with tracer.span(...)``;
* an optional :class:`~repro.obs.sampler.MetricsSampler` whose lifecycle
  the owning engine drives (started at construction, stopped by
  ``close()``).

Two ways to turn it on:

* ``EngineConfig.observability = True`` — the engine-level knob; also
  starts the background sampler (``obs_sample_interval_ms``).
* :func:`force_enable` — a process-wide override the CLI's ``--trace``
  flag sets before running an experiment, so every engine the experiment
  builds records spans and latencies without the experiment drivers
  knowing about observability at all. The force path never starts
  samplers (experiments build hundreds of short-lived engines).
"""

from __future__ import annotations

from repro.obs.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.obs.sampler import MetricsSampler
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    global_tracer,
    reset_global_tracer,
)

__all__ = [
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSampler",
    "NullTracer",
    "NULL_TRACER",
    "Observability",
    "SpanTracer",
    "force_enable",
    "force_enabled",
    "global_tracer",
    "reset_global_tracer",
]

_force_enabled = False


def force_enable(enabled: bool = True) -> None:
    """Process-wide observability override (the ``--trace`` path)."""
    global _force_enabled
    _force_enabled = enabled


def force_enabled() -> bool:
    return _force_enabled


class Observability:
    """Per-engine bundle of registry, tracer, and (optional) sampler."""

    def __init__(
        self,
        enabled: bool = False,
        sample_interval: float = 0.0,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ):
        self.enabled = enabled
        self.sample_interval = sample_interval if enabled else 0.0
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None:
            tracer = global_tracer() if enabled else NULL_TRACER
        self.tracer = tracer
        self.sampler: MetricsSampler | None = None
        # Hot-path histograms, pre-bound so instrumented code does one
        # attribute load instead of a registry lookup per operation.
        self.op_write_latency = self.registry.histogram(
            "op_write_latency_seconds"
        )
        self.op_read_latency = self.registry.histogram(
            "op_read_latency_seconds"
        )
        self.wal_commit_latency = self.registry.histogram(
            "wal_commit_latency_seconds"
        )
        self.wal_commit_batch_records = self.registry.histogram(
            "wal_commit_batch_records", resolution=1
        )
        self.ingest_queue_depth = self.registry.histogram(
            "ingest_queue_depth", resolution=1
        )
        # Lease-mode compaction concurrency (see repro.compaction.leases):
        # peak concurrent leases is monotone, so a counter carries it
        # exactly; the wait histogram records dispatch-to-lease latency.
        self.concurrent_compactions_peak = self.registry.counter(
            "concurrent_compactions_peak"
        )
        self.compaction_lease_wait = self.registry.histogram(
            "compaction_lease_wait_seconds"
        )

    @classmethod
    def from_config(cls, config) -> "Observability":
        """Build from :class:`~repro.core.config.EngineConfig` knobs.

        ``config.observability`` turns on the full bundle including the
        sampler; the process-wide :func:`force_enable` override turns on
        metrics and tracing only.
        """
        configured = bool(getattr(config, "observability", False))
        enabled = configured or _force_enabled
        interval_ms = getattr(config, "obs_sample_interval_ms", 0.0)
        return cls(
            enabled=enabled,
            sample_interval=(interval_ms / 1000.0) if configured else 0.0,
        )

    # ------------------------------------------------------------------
    # Sampler lifecycle (driven by the owning engine)
    # ------------------------------------------------------------------

    def start_sampler(self, source) -> None:
        """Start background sampling over ``source`` (no-op unless the
        config enabled sampling and none is running yet)."""
        if self.sample_interval <= 0 or self.sampler is not None:
            return
        self.sampler = MetricsSampler(
            source, interval_seconds=self.sample_interval
        )
        self.sampler.start()

    def close(self) -> None:
        """Stop the sampler, if one is running (idempotent)."""
        if self.sampler is not None:
            self.sampler.stop()


# Shared disabled instance for components that may run before an engine
# attaches (e.g. a DurableStore draining WAL batches during create).
NULL_OBS = Observability(enabled=False)
