"""Compaction executor: performs the merge a policy chose.

Responsibilities: select the overlapping victim files in the target level,
run the k-way merge with tombstone semantics, materialize the output run
in the active layout, install it, release consumed files, charge all I/O
and byte counters, and notify the engine of every tombstone that became
persistent (for delete-persistence-latency accounting).
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import CompactionTrigger, EngineConfig
from repro.core.stats import Statistics
from repro.lsm.builder import build_run
from repro.lsm.iterator import merge_for_compaction
from repro.lsm.manifest import Manifest
from repro.lsm.runfile import RunFile
from repro.lsm.tree import LSMTree
from repro.storage.disk import SimulatedDisk
from repro.storage.entry import RangeTombstone

from repro.compaction.base import CompactionTask

# Callback invoked once per point/range tombstone that left the system —
# either persisted at the last level or superseded during a merge.
TombstoneCallback = Callable[[object], None]


class CompactionExecutor:
    """Stateless executor bound to one engine's shared components."""

    def __init__(
        self,
        config: EngineConfig,
        disk: SimulatedDisk,
        stats: Statistics,
        manifest: Manifest,
        on_tombstone_persisted: TombstoneCallback | None = None,
    ):
        self.config = config
        self.disk = disk
        self.stats = stats
        self.manifest = manifest
        self.on_tombstone_persisted = on_tombstone_persisted

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, tree: LSMTree, task: CompactionTask, now: float) -> list[RunFile]:
        """Run one compaction task; returns the files it produced."""
        self.manifest.begin_version()
        source_level = tree.level(task.source_level)
        target_level = tree.ensure_level(task.target_level)

        victims = self._victims(tree, task)
        participants = task.source_files + victims

        if self._is_trivial_move(tree, task, victims):
            return self._trivial_move(tree, task, now)

        into_last_level = self._lands_in_last_level(tree, task, victims)

        streams = [f.entries() for f in participants]
        range_tombstones = [
            rt for f in participants for rt in f.range_tombstones
        ]
        extra_cover = self._upper_level_cover(tree, task, participants)

        outcome = merge_for_compaction(
            streams,
            range_tombstones,
            into_last_level=into_last_level,
            extra_cover_tombstones=extra_cover,
        )

        # --- I/O and byte accounting -----------------------------------
        pages_in = sum(f.num_pages for f in participants)
        bytes_in = sum(f.size_bytes for f in participants)
        self.disk.charge_read(pages_in)
        self.stats.compaction_bytes_read += bytes_in
        self.stats.compaction_entries_in += sum(
            f.meta.num_entries for f in participants
        )

        output_files = build_run(
            outcome.entries,
            outcome.range_tombstones,
            config=self.config,
            disk=self.disk,
            stats=self.stats,
            now=now,
            level=task.target_level,
        )
        pages_out = sum(f.num_pages for f in output_files)
        bytes_out = sum(f.size_bytes for f in output_files)
        self.disk.charge_write(pages_out)
        self.stats.compaction_bytes_written += bytes_out
        self.stats.compaction_entries_out += len(outcome.entries)
        self.stats.invalid_entries_purged += outcome.invalid_entries_dropped
        self.stats.tombstones_dropped += len(outcome.dropped_tombstones) + len(
            outcome.dropped_range_tombstones
        )

        if self.on_tombstone_persisted is not None:
            for tombstone in outcome.dropped_tombstones:
                self.on_tombstone_persisted(tombstone)
            for rt in outcome.dropped_range_tombstones:
                self.on_tombstone_persisted(rt)

        # --- installation ----------------------------------------------
        self._install(tree, task, victims, output_files)
        self._account_trigger(task)
        return output_files

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _victims(self, tree: LSMTree, task: CompactionTask) -> list[RunFile]:
        """Overlapping files in the target level that must join the merge."""
        if task.target_level == task.source_level:
            return []  # self-compaction rewrites the chosen files alone
        if task.install_as_run:
            return []  # tiered install: the output is its own run
        target = tree.ensure_level(task.target_level)
        source_ids = {id(f) for f in task.source_files}
        lo = min(f.min_key for f in task.source_files)
        hi = max(f.max_key for f in task.source_files)
        return [
            f
            for f in target.overlapping_files(lo, hi)
            if id(f) not in source_ids
        ]

    def _is_trivial_move(
        self, tree: LSMTree, task: CompactionTask, victims: list[RunFile]
    ) -> bool:
        """A file can move down without rewriting when nothing overlaps it
        and no tombstone work is due (§4.1.3 "when there are no overlapping
        keys ... b remains unchanged").

        Moving into the last level must rewrite files that carry
        tombstones: a trivial move would never drop them.
        """
        if task.whole_level or victims or task.target_level == task.source_level:
            return False
        if len(task.source_files) != 1:
            return False
        source = task.source_files[0]
        lands_last = self._lands_in_last_level(tree, task, victims)
        if lands_last and source.meta.has_tombstones:
            return False
        target = tree.level(task.target_level)
        if target.run_count > 1:
            return False
        return True

    def _trivial_move(
        self, tree: LSMTree, task: CompactionTask, now: float
    ) -> list[RunFile]:
        """Relocate the file's metadata; no page I/O at all."""
        source = task.source_files[0]
        tree.level(task.source_level).remove_files([source])
        tree.level(task.target_level).insert_into_run([source])
        # §4.1.3: for moved files "amax is recalculated based on the time
        # of the latest compaction" — the level clock restarts.
        source.meta.level_arrival_time = now
        self.manifest.log_move(
            source.meta.file_number,
            task.target_level,
            reason=f"trivial-move:{task.trigger.value}",
        )
        self.stats.compactions += 1
        self._account_trigger(task, count_compaction=False)
        return [source]

    def _lands_in_last_level(
        self, tree: LSMTree, task: CompactionTask, victims: list[RunFile]
    ) -> bool:
        """True when the output may drop tombstones: no data lives deeper
        than the target, and (for tiered targets) no *other* run at the
        target level could hold older versions."""
        target_number = task.target_level
        if not tree.is_last_level(target_number):
            return False
        target = tree.level(target_number)
        participating = {id(f) for f in task.source_files} | {id(f) for f in victims}
        non_participating = [
            f for f in target.files() if id(f) not in participating
        ]
        if not non_participating:
            return True
        if task.install_as_run and task.target_level != task.source_level:
            # The output lands as a *separate* run next to existing runs
            # that may hold older versions of merged keys.
            return False
        # Leveled single-run target: non-participating files are disjoint
        # from the merged key range (they were not selected as victims), so
        # they cannot hide older versions. Multi-run targets can.
        return target.run_count == 1

    def _upper_level_cover(
        self, tree: LSMTree, task: CompactionTask, participants: list[RunFile]
    ) -> list[RangeTombstone]:
        """Range tombstones above the source level covering the merged range.

        They are newer than anything being merged, so any covered entry can
        be purged now; the tombstones themselves stay in their own files.
        """
        lo = min(f.min_key for f in participants)
        hi = max(f.max_key for f in participants)
        cover: list[RangeTombstone] = []
        for level in tree.levels[: task.source_level - 1]:
            for run_file in level.files():
                for rt in run_file.range_tombstones:
                    if rt.overlaps_keys(lo, hi):
                        cover.append(rt)
        return cover

    def _install(
        self,
        tree: LSMTree,
        task: CompactionTask,
        victims: list[RunFile],
        output_files: list[RunFile],
    ) -> None:
        source_level = tree.level(task.source_level)
        target_level = tree.level(task.target_level)

        source_level.remove_files(task.source_files)
        if victims:
            target_level.remove_files(victims)

        if task.source_level == task.target_level:
            # Self-compaction: output replaces the sources in place.
            target_level.insert_into_run(output_files)
        elif task.install_as_run:
            target_level.add_run(output_files)
        else:
            target_level.insert_into_run(output_files)

        for consumed in list(task.source_files) + victims:
            self.manifest.log_remove(
                consumed.meta.file_number, reason=f"compacted:{task.trigger.value}"
            )
            self.disk.free(consumed.disk_file_id)
        for produced in output_files:
            self.manifest.log_add(
                produced.meta.file_number,
                task.target_level,
                reason=f"compaction-output:{task.trigger.value}",
            )

    def _account_trigger(
        self, task: CompactionTask, count_compaction: bool = True
    ) -> None:
        if count_compaction:
            self.stats.compactions += 1
        if task.trigger is CompactionTrigger.TTL_EXPIRY:
            self.stats.ttl_triggered_compactions += 1
        else:
            self.stats.saturation_triggered_compactions += 1
