"""Unit tests for the bench reporting helpers."""

import json

from repro.bench.reporting import (
    format_series,
    format_table,
    ratio_summary,
    write_experiment_json,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(
            ["name", "value"],
            [["short", 1], ["a-much-longer-name", 123456]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5
        # columns align: every row has the separator's width or less
        assert all(len(line) <= len(lines[2]) + 2 for line in lines[3:])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6], [0.0001234], [0]])
        assert "0.123" in text
        assert "1.23e+04" in text or "12345" in text.replace(",", "")
        assert "0.000123" in text
        assert "\n0" in text

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert text.splitlines()[0] == "a"


class TestFormatSeries:
    def test_pairs(self):
        text = format_series("name", [1, 2], [10.5, 20])
        assert text.startswith("name: ")
        assert "1→10.5" in text and "2→20" in text


class TestRatioSummary:
    def test_better(self):
        text = ratio_summary("metric", 1.0, 2.0)
        assert "2.00× better" in text

    def test_worse(self):
        text = ratio_summary("metric", 4.0, 2.0)
        assert "2.00× worse" in text

    def test_zero_cases(self):
        assert "both 0" in ratio_summary("m", 0.0, 0.0)
        assert "∞× better" in ratio_summary("m", 0.0, 5.0)


class TestWriteExperimentJson:
    def test_shared_layout(self, tmp_path):
        path = tmp_path / "out.json"
        payload = write_experiment_json(
            str(path),
            "fig6x",
            {"xs": [1, 2], "ys": [0.5, 0.25]},
            elapsed_seconds=1.23456,
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["figure"] == "fig6x"
        assert on_disk["elapsed_seconds"] == 1.235
        assert on_disk["series"]["xs"] == [1, 2]
        # The shared contract: sorted keys, trailing newline.
        assert path.read_text().endswith("\n")
        assert list(on_disk) == sorted(on_disk)

    def test_extra_keys_and_non_json_values(self, tmp_path):
        path = tmp_path / "out.json"
        write_experiment_json(
            str(path),
            "metrics",
            {"when": object()},  # default=str keeps the dump total
            extra={"gate": 0.05},
        )
        on_disk = json.loads(path.read_text())
        assert on_disk["gate"] == 0.05
        assert "elapsed_seconds" not in on_disk
        assert isinstance(on_disk["series"]["when"], str)
