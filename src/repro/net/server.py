"""Asyncio socket server exposing a :class:`ShardedEngine` cluster.

Architecture (one connection, left to right)::

    socket ── reader task ──> bounded queue ──> dispatcher task ──> socket
               (parse)       (in-flight window)   (apply + respond)

* **Pipelining** — clients may send many requests before reading any
  response; each connection's dispatcher applies them strictly in
  arrival order and writes responses in that same order, so a client can
  match responses to requests positionally (the Redis pipelining
  contract).

* **Backpressure** — the queue between reader and dispatcher is bounded
  (``inflight_window``). When the engine stalls a write (the PR 5
  write-stall policy blocks inside the dispatch thread), the dispatcher
  stops draining, the window fills, the reader task blocks in
  ``queue.put`` and therefore stops reading the socket — the kernel's
  TCP window then pushes the stall back to the client. A slow shard
  costs bounded server memory per connection, never an unbounded
  buffer.

* **Batched hand-off** — consecutive write requests already waiting in
  the window are grouped (up to ``batch_max``) into a single
  :meth:`~repro.shard.engine.IngestSession.submit`, so a pipelined
  write burst reaches the member engines as router-batched ingest
  instead of one engine call per request. All connections share one
  :class:`~repro.shard.engine.IngestSession` (one bounded per-shard
  pipeline for the whole server).

* **Durability at the ack boundary** — on durable clusters (built with
  ``store_path``) the server forces a cluster-wide WAL sync after
  applying a write batch and *before* acknowledging it, so an ``OK``
  the client has seen is recoverable after a crash. See
  ``tests/crash/test_serving_durability.py``.

Blocking engine calls run on a private thread pool (``net-dispatch-*``
threads) via ``run_in_executor``; the event loop itself never touches
the engine. The loop runs on one dedicated ``net-server`` thread so the
server embeds in synchronous tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any

from repro.net.protocol import (
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_request,
    encode_response,
    parse_length,
)

# Request kinds that flow through the shared ingest session (everything
# the router can put in a stream without needing a value back).
_WRITE_KINDS = frozenset(
    {"put", "delete", "range_delete", "delete_range", "flush"}
)

_EOF = ("__eof__",)


class LetheServer:
    """Serve a :class:`~repro.shard.engine.ShardedEngine` over TCP.

    Parameters
    ----------
    cluster:
        The engine to expose. The server does not own it: ``stop()``
        leaves the cluster open (callers close it), and ``abort()``
        leaves it exactly as a crash would.
    host, port:
        Bind address; port 0 picks a free port (read ``server.port``
        after ``start()``).
    inflight_window:
        Per-connection bound on parsed-but-unanswered requests. This is
        the backpressure knob: the reader stops reading the socket once
        the window is full.
    batch_max:
        Maximum consecutive write requests folded into one ingest
        submit.
    dispatch_workers:
        Threads applying engine calls. Defaults to ``n_shards + 2``.
    sync_writes:
        Force a cluster WAL sync before acknowledging writes. Defaults
        to ``True`` iff the cluster is durable (``store_path`` set).
    """

    def __init__(
        self,
        cluster,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        inflight_window: int = 32,
        batch_max: int = 64,
        dispatch_workers: int | None = None,
        sync_writes: bool | None = None,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        if inflight_window < 1:
            raise ValueError(f"inflight_window must be >= 1, got {inflight_window}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.cluster = cluster
        self.host = host
        self.port = port
        self.inflight_window = inflight_window
        self.batch_max = batch_max
        self.max_frame = max_frame
        self._sync_writes = (
            sync_writes
            if sync_writes is not None
            else cluster.store_path is not None
        )
        workers = dispatch_workers or cluster.n_shards + 2
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="net-dispatch"
        )
        self._session = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._aborted = False
        # Counters (written from the loop thread / pool threads; reads
        # are monitoring-only).
        self.connections_accepted = 0
        self.requests_received = 0
        self.requests_completed = 0
        self.write_batches = 0
        self.protocol_errors = 0
        obs = cluster.obs
        self._obs = obs
        self.request_latency = obs.registry.histogram(
            "net_request_latency_seconds"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "LetheServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._session = self.cluster.ingest_session()
        self._thread = threading.Thread(
            target=self._run_loop, name="net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._session.close()
            raise error
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drop connections, drain
        the shared ingest session. The cluster stays open."""
        if self._thread is None:
            return
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None
        self._pool.shutdown(wait=True)
        if not self._aborted:
            self._session.close()

    def abort(self) -> None:
        """Crash-style shutdown for fault-injection tests.

        Discards queued-but-unacknowledged write batches (their clients
        never got an OK), kills the loop, and leaves the cluster's
        stores exactly as a process kill would: open, un-drained, with
        only what already reached the WAL.
        """
        if self._thread is None:
            return
        self._aborted = True
        self._session.abort()
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None
        # Waiting is safe: the session abort already failed every
        # ticket, so no dispatch thread can still be blocked — and it
        # must finish before a crash test reopens the store files.
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "LetheServer":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Event loop plumbing
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            elif not self._aborted:
                raise
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Per-connection tasks
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.connections_accepted += 1
        if self._obs.enabled:
            with self._obs.tracer.span(
                "net:accept", connection=self.connections_accepted
            ):
                pass
        window: asyncio.Queue = asyncio.Queue(maxsize=self.inflight_window)
        dispatcher = asyncio.ensure_future(self._dispatch(window, writer))
        try:
            await self._read_frames(reader, window)
            await dispatcher
        except asyncio.CancelledError:
            # Server shutdown cancelled us; finish cleanly — the streams
            # module inspects this task's result once the transport
            # drops, and an unconsumed cancellation shows up as a
            # spurious "Exception in callback" log line.
            task.uncancel()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            if not dispatcher.done():
                dispatcher.cancel()
                try:
                    await dispatcher
                except (asyncio.CancelledError, Exception):
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _read_frames(self, reader, window: asyncio.Queue) -> None:
        """Parse frames into the in-flight window until EOF or error.

        ``window.put`` blocking is the whole backpressure story: while
        the dispatcher is wedged behind a stalled shard, this coroutine
        stops pulling bytes off the socket.
        """
        obs = self._obs
        while True:
            try:
                header = await reader.readexactly(LENGTH_PREFIX_BYTES)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                await window.put(_EOF)
                return
            try:
                length = parse_length(header)
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    raise ProtocolError("truncated frame") from exc
                if obs.enabled:
                    with obs.tracer.span("net:parse", bytes=length):
                        request = decode_request(payload)
                else:
                    request = decode_request(payload)
            except ProtocolError as exc:
                self.protocol_errors += 1
                await window.put(("__protocol_error__", str(exc)))
                return
            self.requests_received += 1
            await window.put(("req", request, perf_counter()))

    async def _dispatch(self, window: asyncio.Queue, writer) -> None:
        """Apply requests in arrival order; respond in the same order."""
        loop = asyncio.get_running_loop()
        carry = None
        try:
            while True:
                item = carry if carry is not None else await window.get()
                carry = None
                kind = item[0]
                if kind == "__eof__":
                    return
                if kind == "__protocol_error__":
                    # Answer everything already applied, then report the
                    # broken frame and hang up.
                    writer.write(encode_response(("error", item[1])))
                    await writer.drain()
                    return
                _, request, started = item
                if request[0] in _WRITE_KINDS:
                    batch = [item]
                    while len(batch) < self.batch_max:
                        try:
                            peeked = window.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        if peeked[0] == "req" and peeked[1][0] in _WRITE_KINDS:
                            batch.append(peeked)
                        else:
                            carry = peeked
                            break
                    responses = await loop.run_in_executor(
                        self._pool, self._apply_writes, [b[1] for b in batch]
                    )
                    now = perf_counter()
                    for (_, _, batch_started), response in zip(batch, responses):
                        self.request_latency.record(now - batch_started)
                        writer.write(encode_response(response))
                    self.requests_completed += len(batch)
                    await writer.drain()
                elif request[0] == "ping":
                    self.request_latency.record(perf_counter() - started)
                    self.requests_completed += 1
                    writer.write(encode_response(("pong",)))
                    await writer.drain()
                else:
                    response = await loop.run_in_executor(
                        self._pool, self._apply_read, request
                    )
                    self.request_latency.record(perf_counter() - started)
                    self.requests_completed += 1
                    writer.write(encode_response(response))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return

    # ------------------------------------------------------------------
    # Engine calls (pool threads)
    # ------------------------------------------------------------------

    def _apply_writes(self, requests: list[tuple]) -> list[tuple]:
        """Apply one batch of write requests through the shared session.

        The whole batch acks (or errors) together: the session ticket
        completes only when every routed sub-batch landed, and durable
        clusters additionally sync the WAL before the first OK leaves.
        """
        obs = self._obs
        try:
            if obs.enabled:
                with obs.tracer.span("net:dispatch", ops=len(requests)):
                    ticket = self._session.submit(requests)
                    ticket.wait()
                    if self._sync_writes:
                        self.cluster.sync()
            else:
                ticket = self._session.submit(requests)
                ticket.wait()
                if self._sync_writes:
                    self.cluster.sync()
            self.write_batches += 1
            return [("ok",)] * len(requests)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            message = f"{type(exc).__name__}: {exc}"
            return [("error", message)] * len(requests)

    def _apply_read(self, request: tuple) -> tuple:
        kind = request[0]
        obs = self._obs
        try:
            span = (
                obs.tracer.span("net:dispatch", op=kind)
                if obs.enabled
                else None
            )
            if span is not None:
                span.__enter__()
            try:
                if kind == "get":
                    value = self.cluster.get(request[1])
                    return ("miss",) if value is None else ("value", value)
                if kind == "scan":
                    return ("pairs", self.cluster.scan(request[1], request[2]))
                if kind == "secondary_range_lookup":
                    return (
                        "pairs",
                        self.cluster.secondary_range_lookup(
                            request[1], request[2]
                        ),
                    )
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
            return ("error", f"unhandled request kind {kind!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the client
            return ("error", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "connections_accepted": self.connections_accepted,
            "requests_received": self.requests_received,
            "requests_completed": self.requests_completed,
            "write_batches": self.write_batches,
            "protocol_errors": self.protocol_errors,
        }
