"""Unit tests for the Page abstraction."""

import pytest

from repro.core.errors import PageFullError
from repro.storage.entry import Entry, EntryKind
from repro.storage.page import Page

from tests.conftest import make_entries


class TestConstruction:
    def test_empty_page(self):
        page = Page(capacity=4)
        assert page.is_empty
        assert len(page) == 0

    def test_prefilled_sorted(self):
        page = Page(4, make_entries([1, 2, 3]))
        assert page.min_key == 1
        assert page.max_key == 3

    def test_rejects_unsorted(self):
        entries = make_entries([1, 2, 3])
        shuffled = [entries[2], entries[0], entries[1]]
        with pytest.raises(ValueError):
            Page(4, shuffled)

    def test_rejects_overflow(self):
        with pytest.raises(PageFullError):
            Page(2, make_entries([1, 2, 3]))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Page(0)


class TestAppend:
    def test_append_in_order(self):
        page = Page(3)
        for entry in make_entries([5, 7, 9]):
            page.append(entry)
        assert len(page) == 3
        assert page.is_full

    def test_append_out_of_order_rejected(self):
        page = Page(3)
        entries = make_entries([5, 7])
        page.append(entries[1])  # key 7 first
        with pytest.raises(ValueError):
            page.append(entries[0])  # then key 5

    def test_append_beyond_capacity_rejected(self):
        page = Page(1, make_entries([1]))
        with pytest.raises(PageFullError):
            page.append(make_entries([2], seq_start=10)[0])

    def test_append_after_seal_rejected(self):
        page = Page(2, make_entries([1])).seal()
        with pytest.raises(PageFullError):
            page.append(make_entries([2], seq_start=10)[0])

    def test_equal_keys_allowed_on_append(self):
        """Merged scratch pages may briefly hold two versions of a key."""
        page = Page(2)
        page.append(Entry(key=1, seqnum=5, kind=EntryKind.PUT, value="a"))
        page.append(Entry(key=1, seqnum=2, kind=EntryKind.PUT, value="b"))
        assert len(page) == 2


class TestSearch:
    def test_find_present(self):
        page = Page(4, make_entries([10, 20, 30, 40]))
        assert page.find(30).key == 30

    def test_find_absent(self):
        page = Page(4, make_entries([10, 20, 30, 40]))
        assert page.find(25) is None
        assert page.find(5) is None
        assert page.find(99) is None

    def test_find_returns_newest_duplicate(self):
        page = Page(3)
        page.append(Entry(key=1, seqnum=2, kind=EntryKind.PUT, value="old"))
        page.append(Entry(key=1, seqnum=8, kind=EntryKind.PUT, value="new"))
        assert page.find(1).seqnum == 8

    def test_range(self):
        page = Page(8, make_entries([1, 3, 5, 7, 9]))
        assert [e.key for e in page.range(3, 7)] == [3, 5, 7]
        assert [e.key for e in page.range(4, 4)] == []
        assert [e.key for e in page.range(0, 100)] == [1, 3, 5, 7, 9]


class TestDeleteKeyMetadata:
    def test_min_max_delete_keys(self):
        page = Page(4, make_entries([1, 2, 3], delete_keys=[30, 10, 20]))
        assert page.min_delete_key() == 10
        assert page.max_delete_key() == 30

    def test_delete_keys_absent(self):
        page = Page(4, make_entries([1, 2]))
        assert page.min_delete_key() is None
        assert page.max_delete_key() is None

    def test_entries_with_delete_key_in(self):
        page = Page(4, make_entries([1, 2, 3], delete_keys=[30, 10, 20]))
        hits = page.entries_with_delete_key_in(10, 25)
        assert sorted(e.delete_key for e in hits) == [10, 20]

    def test_fully_inside_delete_range(self):
        page = Page(4, make_entries([1, 2, 3], delete_keys=[12, 15, 18]))
        assert page.fully_inside_delete_range(10, 20)
        assert not page.fully_inside_delete_range(10, 18)  # 18 end-exclusive
        assert not page.fully_inside_delete_range(13, 20)

    def test_fully_inside_false_with_missing_delete_key(self):
        entries = make_entries([1, 2], delete_keys=[12, None])
        page = Page(4, entries)
        assert not page.fully_inside_delete_range(0, 100)

    def test_empty_page_never_fully_inside(self):
        assert not Page(4).fully_inside_delete_range(0, 100)


class TestAccounting:
    def test_size_bytes(self):
        page = Page(4, make_entries([1, 2], size=100))
        assert page.size_bytes == 200

    def test_tombstone_count(self):
        from repro.storage.entry import EntryKind

        puts = make_entries([1, 2])
        tombs = make_entries([5], seq_start=10, kind=EntryKind.TOMBSTONE)
        page = Page(4, puts + tombs)
        assert page.tombstone_count == 1
