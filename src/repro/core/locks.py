"""Runtime lock-order validation ("lockdep") for the engine's lock graph.

The documented lock hierarchy (``docs/static_analysis.md`` carries the
full rank table; ``docs/compaction.md`` explains the engine core's slice
of it) existed only as prose until this module: nothing stopped a new
code path from taking the commit lock while holding the tree's install
lock and shipping a latent deadlock that only a rare interleaving would
ever exhibit. Here every lock in the engine is constructed with a
*name* and a *rank*, and — when validation is enabled — each thread
keeps a stack of the ranks it currently holds. Acquiring a lock whose
rank is not strictly greater than every held rank (or re-entering a
non-reentrant lock) raises :class:`LockOrderViolation` immediately,
with the acquisition call sites of *both* locks involved. Running the
ordinary test suite with validation on therefore turns every
concurrency stress test into a lock-order race detector: a violation
fires on the first wrong *acquisition order*, not on the eventual
deadlock.

Passthrough contract
--------------------
Validation costs real work per acquisition (a thread-local stack walk
and a call-site capture), which must never tax the production hot path.
When validation is **off** the :class:`OrderedLock` family does not
wrap anything: the constructors return the plain ``threading``
primitive itself (``OrderedLock(...) is a threading.Lock``), so the
disabled configuration is not "cheap", it is *free* — the overhead gate
in ``benchmarks/test_obs_overhead.py`` keeps this honest, and
``tests/test_locks.py`` pins the returned types.

The flag is read at *lock construction* time: enable validation (the
``REPRO_LOCKDEP`` environment variable, or :func:`set_validation`)
before building the engines whose locks should be checked.
``tests/conftest.py`` turns it on for the whole suite.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any

__all__ = [
    "LockOrderViolation",
    "OrderedCondition",
    "OrderedLock",
    "OrderedRLock",
    "OrderedSemaphore",
    "is_validating",
    "set_validation",
    "held_ranks",
]

# ---------------------------------------------------------------------------
# Rank table — the enforced lock hierarchy, outermost (lowest) first.
# docs/static_analysis.md renders this as the source-of-truth table; keep
# the two in sync. Gaps are deliberate room for future locks.
# ---------------------------------------------------------------------------

RANK_CLIENT_POOL_PERMITS = 1000  # net/client.py ClientPool._available
RANK_CLIENT_POOL_STATE = 1200    # net/client.py ClientPool._lock
RANK_INGEST_SESSION = 2000       # shard/engine.py IngestSession._lock
RANK_TOPOLOGY_GATE = 2200        # shard/engine.py _TopologyGate._condition
RANK_EXECUTOR_POOL = 2400        # shard/parallel.py PooledExecutor._lock
# Member lock i gets RANK_SHARD_MEMBER + i: quiescent readers
# (ShardedEngine._locked_view) take every member nested in ascending
# index order, so each index is its own rank. ~400 shards of headroom
# before the next band.
RANK_SHARD_MEMBER = 2600         # shard/engine.py _Topology.locks[i]
RANK_ENGINE_COMPACTION = 3000    # core/engine.py _compaction_mutex
RANK_ENGINE_COMMIT = 4000        # core/engine.py _commit_lock
# Between commit and WAL: a worker acquires its lease from inside the
# selection section (compaction mutex + commit lock held) and releases
# it holding nothing; maintenance waits for lease drain holding only the
# compaction mutex. Both orders are ascending with this placement.
RANK_LEASE_REGISTRY = 4200       # compaction/leases.py LeaseRegistry._cv
RANK_WAL_MUTEX = 4500            # storage/persist.py DurableStore._wal_mutex
RANK_TREE_INSTALL = 5000         # lsm/tree.py LSMTree._install_lock
RANK_SCHEDULER_CV = 6000         # compaction/scheduler.py BackgroundScheduler._cv
RANK_FAULT_INJECTOR = 7000       # storage/persist.py FaultInjector._lock
RANK_DISK_ALLOC = 8000           # storage/disk.py SimulatedDisk._alloc_lock
RANK_RUNFILE_COUNTER = 8500      # lsm/runfile.py _counter_lock
RANK_PERSISTENCE_INDEX = 8800    # core/engine.py _persistence_lock
RANK_STATS = 9000                # core/stats.py Statistics._lock
RANK_INGEST_TICKET = 9200        # shard/engine.py IngestTicket._cv


_validating = os.environ.get("REPRO_LOCKDEP", "").strip().lower() not in (
    "",
    "0",
    "false",
    "off",
)


def set_validation(enabled: bool) -> None:
    """Turn lock-order validation on/off for locks built *after* this call.

    Existing locks keep the mode they were constructed under — a
    passthrough lock is a plain ``threading`` primitive with no rank
    metadata to retrofit.
    """
    global _validating
    _validating = bool(enabled)


def is_validating() -> bool:
    """Whether locks constructed right now would validate ordering."""
    return _validating


class LockOrderViolation(RuntimeError):
    """Two locks were acquired against their documented rank order.

    Carries the call sites of both acquisitions: where the already-held
    lock was taken and where the out-of-order acquisition was attempted.
    """

    def __init__(
        self,
        message: str,
        held_site: list[tuple[str, int, str]] | None = None,
        acquire_site: list[tuple[str, int, str]] | None = None,
    ):
        super().__init__(message)
        self.held_site = held_site or []
        self.acquire_site = acquire_site or []


_held = threading.local()


def _stack() -> list["_HeldEntry"]:
    try:
        return _held.entries
    except AttributeError:
        _held.entries = []
        return _held.entries


def held_ranks() -> list[tuple[str, int]]:
    """(name, rank) of every validated lock the calling thread holds,
    in acquisition order — a debugging/testing aid."""
    entries = _stack()
    _prune_released(entries)
    return [(entry.lock.name, entry.lock.rank) for entry in entries]


def _call_site(skip: int = 2, limit: int = 6) -> list[tuple[str, int, str]]:
    """A cheap stack capture: (filename, lineno, function) per frame.

    Avoids :mod:`traceback`'s source-line loading — this runs on every
    validated acquisition, so it must stay in the microsecond range.
    """
    frames: list[tuple[str, int, str]] = []
    frame: Any = sys._getframe(skip)
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return frames


def _format_site(site: list[tuple[str, int, str]]) -> str:
    return "\n".join(
        f"    {filename}:{lineno} in {function}"
        for filename, lineno, function in site
    )


class _HeldEntry:
    __slots__ = ("lock", "site")

    def __init__(self, lock: "_ValidatingBase", site: list):
        self.lock = lock
        self.site = site


def _prune_released(entries: list["_HeldEntry"]) -> None:
    """Drop stack entries whose permit another thread already released.

    A semaphore released by a thread that never acquired it (the
    hand-off pattern) banks a credit on the lock instead of touching the
    acquirer's thread-local stack; each credit cancels one stale entry
    here, the next time the holding thread walks its stack. Without
    this, a handed-off permit would pin its rank on the acquiring
    thread forever and every later lower-rank acquisition there would
    be a false violation.
    """
    for index in range(len(entries) - 1, -1, -1):
        lock = entries[index].lock
        if lock._orphans:
            with lock._orphan_guard:
                if lock._orphans:
                    lock._orphans -= 1
                    del entries[index]


class _ValidatingBase:
    """Shared machinery: rank bookkeeping around an inner primitive."""

    _reentrant = False
    # Hand-off credits (see _prune_released); only semaphores ever bank
    # them, so the base carries a falsy class attribute for cheap reads.
    _orphans = 0

    def __init__(self, name: str, rank: int):
        if not name:
            raise ValueError("ordered locks need a non-empty name")
        self.name = name
        self.rank = int(rank)

    # -- validation core -------------------------------------------------

    def _check_order(self, blocking: bool) -> None:
        entries = _stack()
        _prune_released(entries)
        for entry in entries:
            held = entry.lock
            if held is self:
                if self._reentrant:
                    continue
                if not blocking:
                    # The ownership probe Condition._is_owned uses:
                    # acquire(blocking=False) on a lock the thread holds
                    # must simply fail, not report a violation.
                    continue
                raise LockOrderViolation(
                    f"re-entered non-reentrant lock {self.name!r} "
                    f"(rank {self.rank}); first acquired at:\n"
                    f"{_format_site(entry.site)}\n"
                    f"  re-entry at:\n{_format_site(_call_site(3))}",
                    held_site=entry.site,
                    acquire_site=_call_site(3),
                )
            if held.rank >= self.rank:
                site = _call_site(3)
                raise LockOrderViolation(
                    f"lock order violation: acquiring {self.name!r} "
                    f"(rank {self.rank}) while holding {held.name!r} "
                    f"(rank {held.rank}); ranks must strictly increase.\n"
                    f"  {held.name!r} acquired at:\n"
                    f"{_format_site(entry.site)}\n"
                    f"  {self.name!r} acquisition at:\n{_format_site(site)}",
                    held_site=entry.site,
                    acquire_site=site,
                )

    def _push(self) -> None:
        _stack().append(_HeldEntry(self, _call_site(3)))

    def _pop(self) -> None:
        entries = _stack()
        for index in range(len(entries) - 1, -1, -1):
            if entries[index].lock is self:
                del entries[index]
                return
        raise LockOrderViolation(
            f"released lock {self.name!r} (rank {self.rank}) that the "
            f"calling thread does not hold; release at:\n"
            f"{_format_site(_call_site(3))}"
        )

    # -- context manager -------------------------------------------------

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *_exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} rank={self.rank} "
            f"inner={self._inner!r}>"
        )


class _ValidatingLock(_ValidatingBase):
    """Validating wrapper over ``threading.Lock``."""

    _reentrant = False

    def __init__(self, name: str, rank: int):
        super().__init__(name, rank)
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order(blocking)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._push()
        return acquired

    def release(self) -> None:
        self._pop()
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()


class _ValidatingRLock(_ValidatingBase):
    """Validating wrapper over ``threading.RLock``."""

    _reentrant = True

    def __init__(self, name: str, rank: int):
        super().__init__(name, rank)
        self._inner = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order(blocking)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._push()
        return acquired

    def release(self) -> None:
        self._pop()
        self._inner.release()


class _ValidatingSemaphore(_ValidatingBase):
    """Validating wrapper over ``threading.Semaphore``.

    Rank semantics: every *acquisition* is checked against the calling
    thread's held stack (a permit counts as held by the thread that took
    it, the pattern :class:`~repro.net.client.ClientPool` uses). Multiple
    permits held by one thread are fine — a semaphore is its own rank's
    only occupant, never a deadlock partner with itself.
    """

    _reentrant = True

    def __init__(self, name: str, rank: int, value: int = 1):
        super().__init__(name, rank)
        self._inner = threading.Semaphore(value)
        self._orphans = 0
        self._orphan_guard = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float | None = None) -> bool:
        self._check_order(blocking)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._push()
        return acquired

    def release(self, n: int = 1) -> None:
        # A permit may legitimately be released by a thread that never
        # acquired one (hand-off patterns); pop what this thread holds
        # and bank the rest as credits against the acquirers' stale
        # stack entries (claimed lazily by _prune_released).
        entries = _stack()
        remaining = n
        for index in range(len(entries) - 1, -1, -1):
            if remaining == 0:
                break
            if entries[index].lock is self:
                del entries[index]
                remaining -= 1
        if remaining:
            with self._orphan_guard:
                self._orphans += remaining
        self._inner.release(n)


class OrderedLock:
    """``threading.Lock`` with a name and a rank.

    When validation is off this *is* a plain ``threading.Lock`` — the
    constructor returns the primitive itself, so passthrough mode adds
    nothing to the lock's interface or its cost.
    """

    def __new__(cls, name: str, rank: int):
        if not _validating:
            return threading.Lock()
        return _ValidatingLock(name, rank)


class OrderedRLock:
    """``threading.RLock`` with a name and a rank (see :class:`OrderedLock`)."""

    def __new__(cls, name: str, rank: int):
        if not _validating:
            return threading.RLock()
        return _ValidatingRLock(name, rank)


class OrderedSemaphore:
    """``threading.Semaphore`` with a name and a rank."""

    def __new__(cls, name: str, rank: int, value: int = 1):
        if not _validating:
            return threading.Semaphore(value)
        return _ValidatingSemaphore(name, rank, value)


class OrderedCondition:
    """``threading.Condition`` whose backing lock carries a name and rank.

    Backed by a non-reentrant validating lock (matching how the
    engine's condition variables are used: none is re-entered), so
    ``Condition``'s ownership probe works through the plain
    acquire/release interface. ``wait()`` releases the backing lock —
    popping its rank off the holder's stack — and re-validates order on
    wake-up re-acquisition.
    """

    def __new__(cls, name: str, rank: int):
        if not _validating:
            return threading.Condition()
        return threading.Condition(_ValidatingLock(name, rank))
