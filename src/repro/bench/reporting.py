"""Plain-text reporting helpers for the experiment drivers.

Every bench prints the same rows/series the paper's figures plot, so a
reader can put the outputs side by side with Fig. 6 and check the shape:
who wins, by what factor, and where the crossovers fall.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width table: headers, separator, one line per row."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One named series as ``name: (x → y), ...`` for quick scanning."""
    pairs = ", ".join(f"{_fmt(x)}→{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def write_experiment_json(
    path: str,
    figure: str,
    series: Mapping[str, Any],
    elapsed_seconds: float | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Dump one experiment's series to ``path`` in the shared layout.

    Every ``--json`` dump from the CLI goes through here so the files
    stay mutually diffable: top-level ``figure``/``elapsed_seconds``/
    ``series`` keys, sorted, two-space indent, trailing newline.
    ``extra`` merges additional top-level keys (e.g. an overhead gate's
    threshold) without disturbing that contract. Returns the payload.
    """
    payload: dict = {"figure": figure, "series": dict(series)}
    if elapsed_seconds is not None:
        payload["elapsed_seconds"] = round(elapsed_seconds, 3)
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return payload


def ratio_summary(label: str, lethe_value: float, baseline_value: float) -> str:
    """'label: Lethe x vs baseline y (r× better/worse)' one-liner."""
    if baseline_value == 0 and lethe_value == 0:
        return f"{label}: both 0"
    if lethe_value == 0:
        return f"{label}: Lethe 0 vs baseline {_fmt(baseline_value)} (∞× better)"
    ratio = baseline_value / lethe_value
    direction = "better" if ratio >= 1 else "worse"
    shown = ratio if ratio >= 1 else 1 / ratio
    return (
        f"{label}: Lethe {_fmt(lethe_value)} vs baseline "
        f"{_fmt(baseline_value)} ({shown:.2f}× {direction})"
    )
