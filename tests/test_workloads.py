"""Unit tests for the workload generator and key distributions."""

import random

import pytest

from repro.core.errors import ConfigError
from repro.workloads.distributions import SequentialKeys, UniformKeys, ZipfianKeys
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import DeleteKeyMode, WorkloadSpec


class TestDistributions:
    def test_uniform_within_domain(self):
        dist = UniformKeys(10, 20, random.Random(1))
        samples = [dist.sample() for _ in range(200)]
        assert all(10 <= s <= 20 for s in samples)
        assert dist.domain == (10, 20)

    def test_uniform_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            UniformKeys(5, 4, random.Random(1))

    def test_sequential(self):
        dist = SequentialKeys(0, 4)
        assert [dist.sample() for _ in range(7)] == [0, 1, 2, 3, 4, 0, 1]

    def test_zipfian_skews_toward_hot_set(self):
        dist = ZipfianKeys(0, 9999, random.Random(1), theta=0.99, scramble=False)
        samples = [dist.sample() for _ in range(5000)]
        assert all(0 <= s <= 9999 for s in samples)
        hot = sum(1 for s in samples if s < 100)
        assert hot > len(samples) * 0.3  # 1% of keys get >30% of draws

    def test_zipfian_scramble_spreads_hot_keys(self):
        dist = ZipfianKeys(0, 9999, random.Random(1), theta=0.99, scramble=True)
        samples = [dist.sample() for _ in range(2000)]
        assert max(samples) > 5000  # hot keys not clustered at the bottom

    def test_zipfian_theta_validated(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0, 10, random.Random(1), theta=1.5)


class TestSpec:
    def test_defaults_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_inserts", 0),
            ("update_fraction", 1.5),
            ("delete_fraction", -0.1),
            ("range_delete_selectivity", 0.0),
            ("num_point_lookups", -1),
            ("key_domain", (10, 10)),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ConfigError):
            WorkloadSpec(**{field: value})

    def test_total_write_ops_estimate(self):
        spec = WorkloadSpec(num_inserts=100, update_fraction=0.5,
                            delete_fraction=0.1)
        assert spec.total_write_ops == 100 + 100 + 10


class TestGenerator:
    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(num_inserts=200, delete_fraction=0.05, seed=9)
        ops_a = list(WorkloadGenerator(spec).ingest_operations())
        ops_b = list(WorkloadGenerator(spec).ingest_operations())
        assert ops_a == ops_b

    def test_different_seeds_differ(self):
        base = dict(num_inserts=200, delete_fraction=0.05)
        ops_a = list(WorkloadGenerator(WorkloadSpec(seed=1, **base)).ingest_operations())
        ops_b = list(WorkloadGenerator(WorkloadSpec(seed=2, **base)).ingest_operations())
        assert ops_a != ops_b

    def test_composition_fractions(self):
        spec = WorkloadSpec(num_inserts=1000, update_fraction=0.5,
                            delete_fraction=0.10, seed=3)
        ops = list(WorkloadGenerator(spec).ingest_operations())
        puts = sum(1 for op in ops if op[0] == "put")
        deletes = sum(1 for op in ops if op[0] == "delete")
        assert deletes == pytest.approx(100, abs=5)
        # ~1000 inserts + ~1000 updates (50% general updates)
        assert puts == pytest.approx(2000, rel=0.1)

    def test_deletes_target_inserted_keys(self):
        spec = WorkloadSpec(num_inserts=500, delete_fraction=0.1, seed=4)
        generator = WorkloadGenerator(spec)
        inserted = set()
        for op in generator.ingest_operations():
            if op[0] == "put":
                inserted.add(op[1])
            elif op[0] == "delete":
                assert op[1] in inserted

    def test_no_duplicate_fresh_inserts(self):
        spec = WorkloadSpec(num_inserts=500, update_fraction=0.0, seed=5)
        generator = WorkloadGenerator(spec)
        keys = [op[1] for op in generator.ingest_operations() if op[0] == "put"]
        assert len(keys) == len(set(keys)) == 500

    def test_delete_key_modes(self):
        for mode, check in (
            (DeleteKeyMode.TIMESTAMP, lambda ops: all(
                op[3] >= 1 for op in ops)),
            (DeleteKeyMode.CORRELATED, lambda ops: all(
                op[3] == op[1] for op in ops)),
            (DeleteKeyMode.UNIFORM, lambda ops: True),
        ):
            spec = WorkloadSpec(num_inserts=100, update_fraction=0.0,
                                delete_key_mode=mode, seed=6)
            ops = [op for op in WorkloadGenerator(spec).ingest_operations()
                   if op[0] == "put"]
            assert check(ops)

    def test_timestamp_delete_keys_monotone(self):
        spec = WorkloadSpec(num_inserts=100, update_fraction=0.0,
                            delete_key_mode=DeleteKeyMode.TIMESTAMP, seed=6)
        dkeys = [op[3] for op in WorkloadGenerator(spec).ingest_operations()
                 if op[0] == "put"]
        assert dkeys == sorted(dkeys)

    def test_query_phase_on_existing(self):
        spec = WorkloadSpec(num_inserts=100, num_point_lookups=50, seed=7)
        generator = WorkloadGenerator(spec)
        list(generator.ingest_operations())
        queries = list(generator.query_operations())
        gets = [op for op in queries if op[0] == "get"]
        assert len(gets) == 50
        inserted = set(generator.inserted_keys)
        assert all(op[1] in inserted for op in gets)

    def test_range_lookups_generated(self):
        spec = WorkloadSpec(num_inserts=100, num_range_lookups=10, seed=8)
        generator = WorkloadGenerator(spec)
        list(generator.ingest_operations())
        scans = [op for op in generator.query_operations() if op[0] == "scan"]
        assert len(scans) == 10
        assert all(op[1] < op[2] for op in scans)

    def test_range_deletes_emitted(self):
        spec = WorkloadSpec(num_inserts=500, range_delete_fraction=0.01,
                            seed=9)
        ops = list(WorkloadGenerator(spec).ingest_operations())
        range_deletes = [op for op in ops if op[0] == "range_delete"]
        assert len(range_deletes) == 5

    def test_zipfian_updates_concentrate(self):
        spec = WorkloadSpec(num_inserts=500, update_fraction=0.5,
                            zipfian=True, seed=10)
        ops = list(WorkloadGenerator(spec).ingest_operations())
        puts = [op[1] for op in ops if op[0] == "put"]
        # updates concentrate on a hot subset → fewer distinct keys than ops
        assert len(set(puts)) < len(puts)

    def test_all_operations_concatenates(self):
        spec = WorkloadSpec(num_inserts=50, num_point_lookups=5, seed=11)
        ops = list(WorkloadGenerator(spec).all_operations())
        assert sum(1 for op in ops if op[0] == "get") == 5
