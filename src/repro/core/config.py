"""Engine configuration: every tuning knob of the reproduced system.

Defaults follow Table 1 of the paper ("Lethe parameters") where a reference
value is given, scaled where noted so experiments complete quickly on a
laptop while preserving the structural ratios (T, B, P, bits-per-key) that
govern LSM behaviour.

The two knobs the paper singles out as Lethe's tuning interface (§4.3) are:

* ``delete_persistence_threshold`` — ``D_th``, the SLA-provided bound on
  delete persistence latency (drives FADE's per-level TTLs), and
* ``delete_tile_pages`` — ``h``, the number of disk pages per delete tile
  (drives KiWi's secondary-range-delete vs lookup trade-off; ``h = 1``
  degenerates to the classic sorted layout).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigError


class MergePolicy(enum.Enum):
    """LSM merge policy (§2 "Compaction Policies: Leveling and Tiering").

    ``LAZY_LEVELING`` is the hybrid the paper cites from Dostoevsky
    [Dayan & Idreos 2018]: tiering at every level except the last, which
    stays leveled — write-cheap in the small levels, read-cheap where
    most data lives.
    """

    LEVELING = "leveling"
    TIERING = "tiering"
    LAZY_LEVELING = "lazy_leveling"


class CompactionTrigger(enum.Enum):
    """What may initiate a compaction (§4.1.4)."""

    SATURATION = "saturation"
    TTL_EXPIRY = "ttl_expiry"


class FileSelectionMode(enum.Enum):
    """FADE file-selection modes (§4.1.4).

    * ``SO`` — saturation-driven trigger, overlap-driven selection: the
      state of the art, minimizes write amplification.
    * ``SD`` — saturation-driven trigger, delete-driven selection: picks the
      file with the highest estimated invalidation count ``b`` to minimize
      space amplification.
    * ``DD`` — delete-driven trigger, delete-driven selection: picks a file
      with an expired TTL to honour ``D_th``.
    """

    SO = "so"
    SD = "sd"
    DD = "dd"


class BloomFilterScope(enum.Enum):
    """Granularity at which Bloom filters are maintained.

    The state of the art keeps one filter per file; KiWi keeps one filter
    per page so full page drops need no filter reconstruction (§4.2.3).
    """

    PER_FILE = "per_file"
    PER_PAGE = "per_page"


@dataclass(frozen=True)
class EngineConfig:
    """Complete configuration of an engine instance.

    Attributes
    ----------
    size_ratio:
        ``T``, growth factor between consecutive level capacities
        (Table 1: 10).
    buffer_pages:
        ``P``, memory-buffer capacity in disk pages (Table 1: 512; scaled
        default 64 keeps trees 3–4 levels deep at experiment scale).
    page_entries:
        ``B``, entries per disk page (Table 1: 4).
    entry_size:
        ``E``, average key-value entry size in bytes (Table 1: 1024).
    key_size:
        Size of the sort key in bytes. Together with ``entry_size`` this
        fixes the tombstone-size ratio ``λ ≈ key/(key+value)`` from §3.2.1
        (Table 1: λ = 0.1 → key 102 bytes when E = 1024; default 102).
    delete_key_size:
        Size of the secondary delete key in bytes (e.g. an 8-byte
        timestamp). Used by KiWi's memory-overhead accounting (§4.2.3).
    merge_policy:
        Leveling or tiering.
    bits_per_key:
        Bloom filter budget in bits per key (evaluation setup: 10).
    bloom_scope:
        Per-file (classic) or per-page (KiWi) Bloom filters.
    delete_tile_pages:
        ``h``, pages per delete tile (Table 1: 16; ``h=1`` = classic layout).
    delete_persistence_threshold:
        ``D_th`` in simulated seconds; ``None`` disables FADE (pure
        state-of-the-art behaviour).
    file_selection:
        FADE file-selection mode used for saturation-driven compactions.
    ingestion_rate:
        ``I``, unique entries ingested per second (Table 1: 1024); drives
        the simulated clock.
    file_pages:
        Pages per on-disk file (sorted-run fragment). The evaluation's
        secondary-range-delete setup uses 256 pages/file; scaled default 64.
        Must be a multiple of ``delete_tile_pages``.
    page_io_seconds:
        Simulated latency of one page I/O (§4.2.4 cites ~100 µs SSD access).
    hash_seconds:
        Simulated cost of one Bloom-filter hash computation (§4.2.4
        measured 80 ns for MurmurHash on a 64-bit key).
    real_io_seconds:
        *Real* (wall-clock) seconds slept per simulated page I/O. Default
        0 keeps experiments instantaneous; the parallel-scaling bench sets
        it to emulate an actual device wait — ``time.sleep`` releases the
        GIL, so pooled shard execution overlaps these waits exactly as a
        deployment overlaps requests to independent disks.
    avoid_blind_deletes:
        When true, FADE probes Bloom filters before inserting a tombstone
        and skips tombstones for keys that are definitely absent (§4.1.5
        "Blind Deletes").
    rocksdb_tombstone_density_selection:
        When true (and FADE is off) the baseline emulates RocksDB's
        file-selection heuristic that favours files with many tombstones
        (§3.1.3), instead of pure min-overlap.
    level1_tiered:
        RocksDB implements Level 1 as tiered to avoid write stalls (§4.3
        "Implementation"); when true, Level 1 accepts multiple overlapping
        runs before merging into Level 2.
    level1_run_trigger:
        With a tiered Level 1, compact it into Level 2 once it holds this
        many runs (RocksDB's ``level0_file_num_compaction_trigger``,
        default 4), in addition to the byte-saturation trigger.
    fade_ttl_from_level_arrival:
        FADE TTL-expiry accounting variant. The default (False) follows
        the paper's Figure 4 pseudocode: a file expires when its oldest
        tombstone's *total* age exceeds the cumulative deadline
        ``Σ_{j≤i} d_j`` of its level. The variant (True) measures each
        file's age from its *arrival at the current level* against the
        per-level TTL ``d_i`` — supported by §4.1.3's "amax is
        recalculated based on the time of the latest compaction", less
        eager, and still ≤ D_th in total. Benchmarked as an ablation.
    cache_pages:
        Block-cache capacity in pages for the query path (the paper's
        setup has "block cache enabled"); 0 (default) disables it so I/O
        counts reflect raw device traffic.
    wal_commit_policy:
        When durable WAL appends reach disk (group commit): ``every_op``
        (default — one durable write per operation, the strictest and
        slowest), ``group(n)`` (drain every ``n`` records), ``interval(ms)``
        (drain when the oldest pending record is ``ms`` simulated
        milliseconds old), ``interval_wall(ms)`` (a wall-clock thread
        timer drains the batch ``ms`` real milliseconds after its first
        record — the deployment variant, which also drains an *idle*
        engine), or ``unsafe_none`` (only forced drains).
        Parsed by :class:`~repro.lsm.wal.CommitPolicy`; ignored by
        engines without a durable store. Flush/compaction/SRD commits and
        checkpoints always force a drain, whatever the policy.
    fsync:
        When true (default), every durable write is followed by
        ``os.fsync`` on the data file — and a directory fsync after
        renames — so "committed" means on-media, not in the OS page
        cache. Crash-test suites disable it for speed: the simulated
        crash model kills between writes, never inside the kernel.
    slowdown_l1_runs:
        Write-stall policy, soft threshold (only consulted under a
        background :class:`~repro.compaction.scheduler.
        BackgroundScheduler`): once Level 1 holds this many pending
        runs, every write pays ``write_slowdown_seconds`` of delay so
        compaction can catch up (RocksDB's ``level0_slowdown_writes_
        trigger``). 0 disables the slowdown.
    stall_l1_runs:
        Write-stall policy, hard threshold: at this many pending Level-1
        runs, writes block until a background worker brings the backlog
        below it (RocksDB's ``level0_stop_writes_trigger``). Counted in
        ``Statistics.write_stalls``/``stall_seconds``. 0 disables the
        hard stall.
    write_slowdown_seconds:
        Real (wall-clock) delay per write while in the slowdown band.
    adaptive_stall_cap:
        Upper bound on the adaptive scaling of the two write-stall
        thresholds. The background scheduler measures each engine's
        flush-arrival rate against its compaction-completion rate; an
        engine draining at least as fast as it ingests has
        ``slowdown_l1_runs``/``stall_l1_runs`` multiplied by up to this
        factor before backpressure engages, so a healthy engine is not
        stalled on the static floor. 1.0 (or less) disables adaptation
        and the configured thresholds apply verbatim.
    observability:
        Turn on the :mod:`repro.obs` instrumentation layer: per-op
        write/read latency histograms, span tracing of flushes,
        compactions, group-commit drains, stalls and recovery phases,
        and the background metrics sampler. Off (default) the
        instrumented paths pay one flag check per operation.
    obs_sample_interval_ms:
        Wall-clock period of the background sampler's time-series
        snapshots (only consulted when ``observability`` is on; 0
        disables the sampler while keeping histograms and tracing).
    """

    size_ratio: int = 10
    buffer_pages: int = 64
    page_entries: int = 4
    entry_size: int = 1024
    key_size: int = 102
    delete_key_size: int = 8
    merge_policy: MergePolicy = MergePolicy.LEVELING
    bits_per_key: float = 10.0
    bloom_scope: BloomFilterScope = BloomFilterScope.PER_FILE
    delete_tile_pages: int = 1
    delete_persistence_threshold: float | None = None
    file_selection: FileSelectionMode = FileSelectionMode.SO
    ingestion_rate: float = 1024.0
    file_pages: int = 64
    page_io_seconds: float = 100e-6
    hash_seconds: float = 80e-9
    real_io_seconds: float = 0.0
    avoid_blind_deletes: bool = True
    rocksdb_tombstone_density_selection: bool = False
    level1_tiered: bool = False
    level1_run_trigger: int = 4
    force_kiwi_layout: bool = False
    fade_ttl_from_level_arrival: bool = False
    cache_pages: int = 0
    wal_commit_policy: str = "every_op"
    fsync: bool = True
    slowdown_l1_runs: int = 8
    stall_l1_runs: int = 16
    write_slowdown_seconds: float = 0.001
    adaptive_stall_cap: float = 4.0
    observability: bool = False
    obs_sample_interval_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.size_ratio < 2:
            raise ConfigError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.buffer_pages < 1:
            raise ConfigError(f"buffer_pages must be >= 1, got {self.buffer_pages}")
        if self.page_entries < 1:
            raise ConfigError(f"page_entries must be >= 1, got {self.page_entries}")
        if self.entry_size < 2:
            raise ConfigError(f"entry_size must be >= 2, got {self.entry_size}")
        if not (0 < self.key_size < self.entry_size):
            raise ConfigError(
                f"key_size must lie in (0, entry_size), got {self.key_size}"
            )
        if self.delete_key_size < 1:
            raise ConfigError(
                f"delete_key_size must be >= 1, got {self.delete_key_size}"
            )
        if self.bits_per_key <= 0:
            raise ConfigError(f"bits_per_key must be positive, got {self.bits_per_key}")
        if self.delete_tile_pages < 1:
            raise ConfigError(
                f"delete_tile_pages must be >= 1, got {self.delete_tile_pages}"
            )
        if self.file_pages < 1:
            raise ConfigError(f"file_pages must be >= 1, got {self.file_pages}")
        if self.file_pages % self.delete_tile_pages != 0:
            raise ConfigError(
                "file_pages must be a multiple of delete_tile_pages "
                f"(got {self.file_pages} pages, h={self.delete_tile_pages})"
            )
        if (
            self.delete_persistence_threshold is not None
            and self.delete_persistence_threshold <= 0
        ):
            raise ConfigError(
                "delete_persistence_threshold must be positive when set, "
                f"got {self.delete_persistence_threshold}"
            )
        if self.ingestion_rate <= 0:
            raise ConfigError(
                f"ingestion_rate must be positive, got {self.ingestion_rate}"
            )
        if self.page_io_seconds < 0 or self.hash_seconds < 0:
            raise ConfigError("latency model parameters must be non-negative")
        if self.real_io_seconds < 0:
            raise ConfigError(
                f"real_io_seconds must be >= 0, got {self.real_io_seconds}"
            )
        if self.cache_pages < 0:
            raise ConfigError(f"cache_pages must be >= 0, got {self.cache_pages}")
        if self.slowdown_l1_runs < 0 or self.stall_l1_runs < 0:
            raise ConfigError("write-stall thresholds must be >= 0")
        if (
            self.slowdown_l1_runs > 0
            and self.stall_l1_runs > 0
            and self.stall_l1_runs < self.slowdown_l1_runs
        ):
            raise ConfigError(
                "stall_l1_runs must be >= slowdown_l1_runs "
                f"(got {self.stall_l1_runs} < {self.slowdown_l1_runs})"
            )
        if self.write_slowdown_seconds < 0:
            raise ConfigError(
                f"write_slowdown_seconds must be >= 0, "
                f"got {self.write_slowdown_seconds}"
            )
        if self.adaptive_stall_cap < 0:
            raise ConfigError(
                f"adaptive_stall_cap must be >= 0, "
                f"got {self.adaptive_stall_cap}"
            )
        if self.obs_sample_interval_ms < 0:
            raise ConfigError(
                f"obs_sample_interval_ms must be >= 0, "
                f"got {self.obs_sample_interval_ms}"
            )
        try:
            self.commit_policy
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def buffer_entries(self) -> int:
        """Memory buffer capacity in entries: ``P · B``."""
        return self.buffer_pages * self.page_entries

    @property
    def buffer_bytes(self) -> int:
        """Memory buffer capacity in bytes: ``M = P · B · E``."""
        return self.buffer_pages * self.page_entries * self.entry_size

    @property
    def value_size(self) -> int:
        """Average value size in bytes (``E - key``)."""
        return self.entry_size - self.key_size

    @property
    def tombstone_size(self) -> int:
        """Size of a point tombstone: key plus a one-byte flag."""
        return self.key_size + 1

    @property
    def tombstone_size_ratio(self) -> float:
        """``λ = size(tombstone) / size(key-value)`` from §3.2.1."""
        return self.tombstone_size / self.entry_size

    @property
    def file_entries(self) -> int:
        """Entries per full file: ``file_pages · B``."""
        return self.file_pages * self.page_entries

    @property
    def tiles_per_file(self) -> int:
        """Delete tiles per full file: ``file_pages / h``."""
        return self.file_pages // self.delete_tile_pages

    @property
    def fade_enabled(self) -> bool:
        """True when a delete persistence threshold is configured."""
        return self.delete_persistence_threshold is not None

    @property
    def commit_policy(self):
        """The parsed :class:`~repro.lsm.wal.CommitPolicy`."""
        from repro.lsm.wal import CommitPolicy  # lsm.wal has no config dep

        return CommitPolicy.parse(self.wal_commit_policy)

    @property
    def kiwi_enabled(self) -> bool:
        """True when the Key Weaving layout is active.

        ``h = 1`` degenerates to the classic layout (§4.2.3), so KiWi code
        paths only engage for ``h > 1`` unless ``force_kiwi_layout`` pins
        them on (used by layout experiments that sweep h down to 1).
        """
        return self.delete_tile_pages > 1 or self.force_kiwi_layout

    def level_capacity_entries(self, level: int) -> int:
        """Capacity of disk level ``i`` (1-based) in entries: ``M·T^i / E``.

        Level 0 is the in-memory buffer; disk levels grow by ``T``.
        """
        if level < 1:
            raise ValueError(f"disk levels are numbered from 1, got {level}")
        return self.buffer_entries * (self.size_ratio**level)

    def levels_for(self, total_entries: int) -> int:
        """Number of disk levels ``L`` needed to hold ``total_entries``.

        Solves the smallest ``L`` with ``sum_{i=1..L} M·T^i >= N`` (§3.2
        model: capacity of the tree is ``Σ M·T^i``).
        """
        if total_entries <= 0:
            return 0
        capacity = 0
        level = 0
        while capacity < total_entries:
            level += 1
            capacity += self.level_capacity_entries(level)
            if level > 64:  # pragma: no cover - guards pathological configs
                raise ConfigError("levels_for did not converge; check config")
        return level

    def expected_false_positive_rate(self) -> float:
        """Standard BF false-positive rate ``e^{-(bits/key)·ln(2)^2}`` (§3.2.2)."""
        return math.exp(-self.bits_per_key * (math.log(2) ** 2))

    def with_updates(self, **changes) -> "EngineConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **changes)


def lethe_config(
    delete_persistence_threshold: float,
    delete_tile_pages: int = 1,
    **overrides,
) -> EngineConfig:
    """Convenience constructor for a Lethe engine configuration.

    Lethe = FADE (``D_th`` set, DD-capable triggers) + KiWi (``h``). Bloom
    filters move to page granularity whenever KiWi is active so that full
    page drops need no filter rebuild (§4.2.3).
    """
    kiwi_active = delete_tile_pages > 1 or overrides.get("force_kiwi_layout", False)
    scope = (
        BloomFilterScope.PER_PAGE
        if kiwi_active
        else overrides.pop("bloom_scope", BloomFilterScope.PER_FILE)
    )
    return EngineConfig(
        delete_persistence_threshold=delete_persistence_threshold,
        delete_tile_pages=delete_tile_pages,
        bloom_scope=scope,
        **overrides,
    )


def rocksdb_config(**overrides) -> EngineConfig:
    """Convenience constructor for the RocksDB-like baseline.

    Leveled merge, saturation-only compaction triggers, min-overlap file
    selection, classic sorted layout (h=1), per-file Bloom filters.
    """
    return EngineConfig(
        delete_persistence_threshold=None,
        delete_tile_pages=1,
        bloom_scope=BloomFilterScope.PER_FILE,
        **overrides,
    )
