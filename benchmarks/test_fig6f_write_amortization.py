"""Bench for Fig 6F: normalized bytes written over time.

Paper shape: Lethe's eager early merging costs up to 1.4× RocksDB's
writes, amortizing to ≈1.007× by the end of the run. At simulation scale
the amortization overshoots: purged invalid entries make Lethe's later
compactions strictly cheaper, so the ratio ends below 1.
"""

from repro.bench import experiments as ex
from repro.bench.harness import ExperimentScale

from benchmarks.conftest import emit

SCALE = ExperimentScale(num_inserts=18000, num_point_lookups=0)


def test_fig6f_write_amortization(benchmark):
    result = benchmark.pedantic(
        lambda: ex.fig6f_write_amortization(SCALE, num_snapshots=8),
        rounds=1,
        iterations=1,
    )
    emit(result)
    normalized = result.series["normalized_bytes_written"]
    assert normalized[-1] <= normalized[0] + 0.05, "overhead must amortize"
    assert max(normalized) < 1.6
