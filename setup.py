"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP
660 editable installs (which build a wheel) fail. A ``setup.py`` lets pip
fall back to the legacy ``develop`` code path for ``pip install -e .``.
Metadata lives in ``pyproject.toml``; this file only triggers the build.
"""

from setuptools import setup

setup()
