"""Parallel shard execution: pooled fan-out and the async ingest queue.

PR 1's :class:`~repro.shard.engine.ShardedEngine` made per-shard *work*
smaller but dispatched it with Python ``for`` loops, so the measured
reduction never became wall-clock speedup. This module supplies the two
missing pieces:

* **Executors** — a :class:`ShardExecutor` strategy with two
  implementations: :class:`SerialExecutor` (the original loop, still the
  default) and :class:`PooledExecutor` (a shared thread pool). Every
  multi-shard operation on the cluster (``scan``, ``secondary_range_
  lookup``, ``secondary_range_delete``, ``flush``, ``force_full_
  compaction``, idle checks, rebalance collection) builds one task per
  shard and hands the list to the executor, which returns results in
  shard order. Member trees share no mutable state except the cluster
  clock (itself thread-safe, see :mod:`repro.core.clock`), and the
  sharded engine serializes access to each member behind a per-shard
  lock, so pooled dispatch needs no further coordination.

* **The async ingest queue** — :class:`AsyncIngestQueue` turns the
  router's per-shard batches into a bounded pipeline: one worker thread
  per shard drains a depth-limited queue, so a hot shard lags behind its
  backlog without stalling the rest of the stream, and the producer only
  blocks when that hot shard is ``depth`` batches behind (backpressure
  instead of unbounded memory). Barriers (multi-shard operations) call
  :meth:`AsyncIngestQueue.drain` so they observe every earlier write —
  the same ordering contract the serial path honours.

Why threads help a GIL-bound interpreter at all: an LSM engine is
I/O-bound, and I/O waits release the GIL. The simulated disk can inject
*real* per-page device latency (``EngineConfig.real_io_seconds``), which
it serves with ``time.sleep`` — exactly the wait a real storage stack
would park on — so pooled fan-out overlaps the shards' device time the
way a deployment overlaps requests to independent disks. The in-Python
bookkeeping (merges, Bloom probes) stays serialized by the GIL; the
``parallel_scaling`` experiment measures how much of the wall clock that
leaves on the table.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

from repro.core import locks
from repro.core.errors import ConfigError
from repro.obs import NULL_OBS


class ShardExecutor(ABC):
    """Strategy for dispatching one task per shard.

    ``run`` takes zero-argument callables (one per participating shard)
    and returns their results *in task order* — callers rely on result
    position matching shard position for k-way merges and report sums.
    The first task exception propagates to the caller.
    """

    @abstractmethod
    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Execute every task; return results in task order."""

    def close(self) -> None:
        """Release any pooled resources (idempotent; no-op by default)."""

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(ShardExecutor):
    """The original behaviour: run each shard's task in a plain loop.

    Default because it is deterministic down to the interleaving of
    clock ticks, adds zero overhead for single-shard clusters, and is
    the right choice whenever per-shard work is pure CPU (the GIL would
    serialize a pool anyway).
    """

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        return [task() for task in tasks]


class PooledExecutor(ShardExecutor):
    """Fan shard tasks out to a shared :class:`ThreadPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool width. ``None`` (default) sizes the pool to the widest
        fan-out seen so far, so an 8-shard cluster gets 8 workers and
        every shard's device wait overlaps.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        self._requested = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        self._lock = locks.OrderedLock(
            "parallel.executor-pool", locks.RANK_EXECUTOR_POOL
        )

    def _pool_for(self, width: int) -> ThreadPoolExecutor:
        """Current pool, grown to ``width`` if auto-sized. Caller holds
        ``_lock`` — growth replaces the pool, and submitting under the
        same lock is what keeps a concurrent ``run`` from holding a
        just-shut-down pool reference."""
        wanted = self._requested or max(width, 2)
        if self._pool is None or (
            self._requested is None and wanted > self._pool_width
        ):
            if self._pool is not None:
                # No new submits can race us (they need _lock); let the
                # old pool finish its in-flight work and retire without
                # blocking the grower.
                self._pool.shutdown(wait=False)
            self._pool = ThreadPoolExecutor(
                max_workers=wanted, thread_name_prefix="shard"
            )
            self._pool_width = wanted
        return self._pool

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        if len(tasks) <= 1:
            # No fan-out to overlap; skip the submit/wakeup round trip.
            return [task() for task in tasks]
        with self._lock:
            pool = self._pool_for(len(tasks))
            futures = [pool.submit(task) for task in tasks]
        # Wait for EVERY task before propagating the first failure: the
        # sharded engine's gate treats a returned fan-out as "no task in
        # flight", so leaving stragglers running after an early raise
        # would let a subsequent reshard race them.
        wait(futures)
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_width = 0

    def describe(self) -> str:
        width = self._requested if self._requested is not None else "auto"
        return f"PooledExecutor(max_workers={width})"


def make_executor(spec: ShardExecutor | str | None) -> ShardExecutor:
    """Resolve an executor choice: instance, name, or ``None`` (serial).

    Accepts the strings ``"serial"`` and ``"pooled"`` so the choice can
    be threaded through configs and the CLI without importing classes.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, ShardExecutor):
        return spec
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "serial":
            return SerialExecutor()
        if name == "pooled":
            return PooledExecutor()
        raise ConfigError(
            f"unknown executor {spec!r}; expected 'serial' or 'pooled'"
        )
    raise ConfigError(f"cannot build an executor from {spec!r}")


_STOP = object()


class IngestAborted(RuntimeError):
    """A queued batch was discarded by :meth:`AsyncIngestQueue.abort`."""


class AsyncIngestQueue:
    """Bounded per-shard pipeline between the router and the members.

    One worker thread per shard pulls batches off a ``Queue(maxsize=
    depth)`` and applies them through the shard's handler. The producer
    (the thread iterating ``router.batches``) blocks **only** when the
    shard it is enqueueing to is ``depth`` batches behind — other shards
    keep receiving work, which is how a hot shard lags without stalling
    the stream.

    Ordering: batches for one shard are applied in enqueue order (one
    FIFO queue, one worker per shard), which preserves per-key order —
    the only order the router guarantees in the first place.

    Errors: a handler exception is recorded, the worker keeps draining
    (so the producer never deadlocks against a full queue), and the
    exception re-raises on the next :meth:`enqueue`, :meth:`drain`, or
    :meth:`close`. Batches behind a failed one on the same shard are
    discarded — their writes may depend on the failed batch's state.

    Completion callbacks: ``enqueue(..., on_done=fn)`` registers a
    per-batch callback invoked by the worker after the batch is applied
    (``fn(None)``), fails (``fn(exc)``), or is discarded behind an
    earlier failure or an :meth:`abort` (``fn(error)``). This is the ack
    hook the serving layer's :class:`~repro.shard.engine.IngestSession`
    tickets hang off.
    """

    def __init__(
        self,
        handlers: Sequence[Callable[[list], None]],
        depth: int = 4,
        obs: Any = None,
    ):
        if depth < 1:
            raise ConfigError(f"ingest queue depth must be >= 1, got {depth}")
        if not handlers:
            raise ConfigError("AsyncIngestQueue needs at least one handler")
        self.depth = depth
        self.obs = obs if obs is not None else NULL_OBS
        self._queues: list[queue.Queue] = [
            queue.Queue(maxsize=depth) for _ in handlers
        ]
        self._errors: list[BaseException | None] = [None] * len(handlers)
        self._closed = False
        self._aborted = False
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(index, handler),
                name=f"ingest-shard-{index}",
                daemon=True,
            )
            for index, handler in enumerate(handlers)
        ]
        for thread in self._threads:
            thread.start()

    def _worker(self, index: int, handler: Callable[[list], None]) -> None:
        pending = self._queues[index]
        while True:
            item = pending.get()
            outcome: BaseException | None = None
            try:
                if item is _STOP:
                    return
                operations, on_done = item
                try:
                    if self._aborted:
                        outcome = IngestAborted("ingest queue aborted")
                    elif self._errors[index] is not None:
                        outcome = self._errors[index]
                    else:
                        handler(operations)
                except BaseException as exc:  # noqa: BLE001 - re-raised to producer
                    self._errors[index] = exc
                    outcome = exc
                if on_done is not None:
                    on_done(outcome)
            finally:
                pending.task_done()

    def _raise_pending(self) -> None:
        for error in self._errors:
            if error is not None:
                raise error

    def enqueue(
        self,
        shard: int,
        operations: list,
        on_done: Callable[[BaseException | None], None] | None = None,
    ) -> None:
        """Queue one batch for ``shard``; blocks at ``depth`` backlog."""
        if self._closed:
            raise ConfigError("enqueue on a closed AsyncIngestQueue")
        self._raise_pending()
        pending = self._queues[shard]
        if self.obs.enabled:
            # Depth *before* the put: what the producer saw when it
            # decided to enqueue (and possibly block) on this shard.
            self.obs.ingest_queue_depth.record(pending.qsize())
        pending.put((operations, on_done))
        if self._aborted:
            # Raced an abort(): the workers may already be gone, so this
            # item would never be consumed. Sweep it (and anything else
            # left) ourselves so its on_done callback always fires.
            self._discard_pending()

    def drain(self) -> None:
        """Block until every queued batch has been applied (a barrier)."""
        for pending in self._queues:
            pending.join()
        self._raise_pending()

    def backlog(self) -> list[int]:
        """Approximate queued batches per shard (monitoring/tests)."""
        return [pending.qsize() for pending in self._queues]

    def close(self) -> None:
        """Stop the workers and re-raise any pending handler error."""
        if self._closed:
            return
        self._closed = True
        for pending in self._queues:
            pending.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._raise_pending()

    def abort(self) -> None:
        """Stop the workers WITHOUT applying still-queued batches.

        Models a hard kill for the serving layer's crash tests: batches
        already mid-handler finish (a write in flight may land), queued
        batches are discarded with :class:`IngestAborted` delivered to
        their ``on_done`` callbacks, and no pending error is re-raised.
        """
        if self._closed:
            return
        self._aborted = True
        self._closed = True
        for pending in self._queues:
            pending.put(_STOP)
        for thread in self._threads:
            thread.join()
        # A producer's put may still land after the workers exited (it
        # was blocked on a full queue while we drained); sweep leftovers
        # so every batch's callback fires exactly once.
        self._discard_pending()

    def _discard_pending(self) -> None:
        for pending in self._queues:
            while True:
                try:
                    item = pending.get_nowait()
                except queue.Empty:
                    break
                try:
                    if item is not _STOP:
                        _, on_done = item
                        if on_done is not None:
                            on_done(IngestAborted("ingest queue aborted"))
                finally:
                    pending.task_done()

    def __enter__(self) -> "AsyncIngestQueue":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
