"""Mergeable log-bucketed histograms and the metrics registry.

The engine's :class:`~repro.core.stats.Statistics` counters answer "how
much work happened"; they cannot answer "how was that work distributed".
This module adds the distribution half of the story:

* :class:`LatencyHistogram` — a fixed-layout, power-of-two-bucketed
  histogram. The bucket layout is identical for every instance, which is
  what makes histograms *mergeable*: summing the bucket arrays of four
  shards yields exactly the histogram the pooled op stream would have
  produced (the same contract :meth:`Statistics.merge` gives scalar
  counters). Recording is one integer ``bit_length`` plus a handful of
  updates under a short lock — cheap enough for the per-operation write
  path when observability is on, and never touched when it is off.
* :class:`MetricsRegistry` — a named collection of counters, gauges and
  histograms, layered over existing :class:`Statistics` registries so
  one :meth:`MetricsRegistry.collect` call yields every number the
  engine knows about (exported by :mod:`repro.obs.export`).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable


class LatencyHistogram:
    """Log₂-bucketed histogram with fixed, instance-independent buckets.

    Values are scaled by ``resolution`` (default ``1e9``: seconds in,
    nanosecond buckets) and land in bucket ``i`` iff the scaled integer
    value has ``i`` significant bits — bucket 0 holds zero, bucket ``i``
    holds ``[2^(i-1), 2^i)``. 64 buckets cover nine decades above the
    resolution, so one layout serves sub-microsecond op latencies and
    multi-second recovery phases alike. Quantiles are resolved to a
    bucket's upper bound: pessimistic by at most 2x, deterministic, and
    stable under :meth:`merge`.

    Pass ``resolution=1`` to histogram plain counts (batch sizes, queue
    depths) instead of latencies.
    """

    BUCKET_COUNT = 64
    _QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999))

    __slots__ = ("name", "resolution", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str = "", resolution: float = 1e9):
        self.name = name
        self.resolution = resolution
        self._lock = threading.Lock()
        self._counts = [0] * self.BUCKET_COUNT
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    # ------------------------------------------------------------------
    # Recording (the hot path)
    # ------------------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The bucket a value falls in (also the test surface for the
        boundary contract)."""
        scaled = int(value * self.resolution)
        if scaled <= 0:
            return 0
        index = scaled.bit_length()
        return index if index < self.BUCKET_COUNT else self.BUCKET_COUNT - 1

    def record(self, value: float) -> None:
        """Record one observation (in the unit ``resolution`` scales)."""
        # bucket_index(), inlined: this runs once per engine operation
        # when observability is on, so it skips the method call.
        scaled = int(value * self.resolution)
        index = scaled.bit_length() if scaled > 0 else 0
        if index >= self.BUCKET_COUNT:
            index = self.BUCKET_COUNT - 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram, in place; returns ``self``.

        Bucket layouts are identical by construction, so merging shard
        histograms is exact: the merged bucket array equals the one a
        single histogram fed the pooled op stream would hold. Locks are
        taken sequentially (snapshot ``other``, then update ``self``),
        never nested, so concurrent cross-merges cannot deadlock.
        """
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge histograms of different resolutions "
                f"({self.resolution} vs {other.resolution})"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for index, bucket in enumerate(counts):
                self._counts[index] += bucket
            self._count += count
            self._sum += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high
        return self

    @classmethod
    def combined(
        cls,
        parts: Iterable["LatencyHistogram"],
        name: str = "",
        resolution: float | None = None,
    ) -> "LatencyHistogram":
        """A fresh histogram holding the sum of ``parts`` (none mutated)."""
        parts = list(parts)
        if resolution is None:
            resolution = parts[0].resolution if parts else 1e9
        total = cls(name=name, resolution=resolution)
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def bucket_upper_bound(self, index: int) -> float:
        """Exclusive upper bound of bucket ``index``, in recorded units."""
        if index <= 0:
            return 1.0 / self.resolution
        return float(2**index) / self.resolution

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (resolved to a bucket upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            count = self._count
            counts = list(self._counts)
            high = self._max
        if count == 0:
            return 0.0
        rank = max(1, int(q * count + 0.9999999))
        seen = 0
        for index, bucket in enumerate(counts):
            seen += bucket
            if seen >= rank:
                return min(self.bucket_upper_bound(index), high) if index else 0.0
        return high  # pragma: no cover - rank <= count always hits a bucket

    def percentiles(self) -> dict:
        """The standard latency summary: p50/p90/p99/p999."""
        return {label: self.quantile(q) for label, q in self._QUANTILES}

    def snapshot(self) -> dict:
        """JSON-safe summary: count, sum, min/max, quantiles, buckets."""
        with self._lock:
            count = self._count
            counts = list(self._counts)
            total, low, high = self._sum, self._min, self._max
        summary = {
            "count": count,
            "sum": total,
            "min": 0.0 if count == 0 else low,
            "max": high,
            "mean": (total / count) if count else 0.0,
            "buckets": {
                str(index): bucket
                for index, bucket in enumerate(counts)
                if bucket
            },
        }
        summary.update(self.percentiles())
        return summary


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, delta: int = 1) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        return self._value


class MetricsRegistry:
    """Named counters, gauges and histograms, plus attached Statistics.

    ``counter``/``histogram`` are get-or-create so instrumentation sites
    never coordinate registration. Gauges are callables sampled at
    :meth:`collect` time; attached :class:`Statistics` registries are
    snapshotted at collect time too, so the registry adds no write-path
    cost on top of what the engine already pays.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._gauges: dict[str, Callable[[], Any]] = {}
        self._stats: dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            existing = self._counters.get(name)
            if existing is None:
                existing = self._counters[name] = Counter(name)
            return existing

    def histogram(self, name: str, resolution: float = 1e9) -> LatencyHistogram:
        with self._lock:
            existing = self._histograms.get(name)
            if existing is None:
                existing = self._histograms[name] = LatencyHistogram(
                    name, resolution=resolution
                )
            return existing

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register (or replace) a gauge callable sampled at collect."""
        with self._lock:
            self._gauges[name] = fn

    def attach_stats(self, name: str, stats: Any) -> None:
        """Expose a :class:`Statistics` registry's counters under ``name``."""
        with self._lock:
            self._stats[name] = stats

    def histograms(self) -> dict:
        with self._lock:
            return dict(self._histograms)

    def collect(self) -> dict:
        """One JSON-safe snapshot of everything the registry knows."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
            stats = dict(self._stats)
        gauge_values = {}
        for name, fn in gauges.items():
            try:
                gauge_values[name] = fn()
            except Exception:  # noqa: BLE001 - a dead gauge must not kill export
                gauge_values[name] = None
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": gauge_values,
            "histograms": {
                name: h.snapshot() for name, h in histograms.items()
            },
            "stats": {name: s.snapshot() for name, s in stats.items()},
        }
