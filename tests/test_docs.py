"""The narrative docs stay navigable: internal links must resolve.

Drives the same checker CI runs (``tools/check_doc_links.py``) so a
renamed doc, a dropped section, or a typo'd relative path fails the
suite locally before it fails the docs job.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_are_linked_from_readme():
    for name in ("architecture.md", "shard.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/shard.md" in readme


def test_internal_doc_links_resolve():
    checker = _load_checker()
    problems = checker.find_problems(REPO_ROOT)
    assert not problems, "\n".join(problems)


def test_checker_flags_broken_links(tmp_path):
    """The checker itself works — a fabricated broken link is caught."""
    checker = _load_checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "a.md").write_text(
        "# Title\nsee [missing](nope.md) and [gone](#no-such-heading)\n",
        encoding="utf-8",
    )
    (tmp_path / "README.md").write_text("[ok](docs/a.md)\n", encoding="utf-8")
    problems = checker.find_problems(tmp_path)
    assert len(problems) == 2
    assert any("nope.md" in p for p in problems)
    assert any("no-such-heading" in p for p in problems)


def test_github_anchor_convention():
    checker = _load_checker()
    assert checker.github_anchor("The async ingest queue") == (
        "the-async-ingest-queue"
    )
    assert checker.github_anchor("Split and rebalance (range "
                                 "partitioning only)") == (
        "split-and-rebalance-range-partitioning-only"
    )
    assert checker.github_anchor("`code` *em* heading") == "code-em-heading"
