"""Disk pages: the unit of I/O.

A page holds up to ``B`` entries. In both the classic layout and KiWi,
*entries within a page are sorted on the sort key* ``S`` (§4.2.1 "Page
layout": in-page order does not affect secondary range deletes but enables
fast in-memory binary search once a page is fetched). Pages additionally
track their delete-key (``D``) min/max so KiWi's delete fence pointers and
full-page-drop decisions can be made without reading the page.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator

from repro.core.errors import PageFullError
from repro.storage.entry import Entry

_page_uid_counter = itertools.count()


class Page:
    """An immutable-once-sealed page of entries sorted on the sort key.

    Every page carries a process-unique ``uid`` — the block cache's key.
    Because pages are never mutated once sealed (partial page drops build
    replacement pages), a uid can never refer to stale contents.

    Parameters
    ----------
    capacity:
        Maximum number of entries (``B`` from Table 1).
    entries:
        Optional initial entries; must already be sorted on the sort key.
    """

    __slots__ = ("capacity", "uid", "_entries", "_keys", "_sealed")

    def __init__(self, capacity: int, entries: Iterable[Entry] = ()):
        self.uid = next(_page_uid_counter)
        if capacity < 1:
            raise ValueError(f"page capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: list[Entry] = list(entries)
        if len(self._entries) > capacity:
            raise PageFullError(
                f"{len(self._entries)} entries exceed page capacity {capacity}"
            )
        keys = [e.key for e in self._entries]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("page entries must be sorted on the sort key")
        self._keys = keys
        self._sealed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, entry: Entry) -> None:
        """Append an entry; it must keep the page sorted on the sort key."""
        if self._sealed:
            raise PageFullError("cannot append to a sealed page")
        if len(self._entries) >= self.capacity:
            raise PageFullError(f"page full at capacity {self.capacity}")
        if self._keys and entry.key < self._keys[-1]:
            raise ValueError(
                f"append would break sort order: {entry.key!r} < {self._keys[-1]!r}"
            )
        self._entries.append(entry)
        self._keys.append(entry.key)

    def seal(self) -> "Page":
        """Freeze the page (no further appends); returns self for chaining."""
        self._sealed = True
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[Entry, ...]:
        """All entries in sort-key order."""
        return tuple(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def min_key(self) -> Any:
        """Smallest sort key; raises on empty page."""
        return self._keys[0]

    @property
    def max_key(self) -> Any:
        """Largest sort key; raises on empty page."""
        return self._keys[-1]

    @property
    def size_bytes(self) -> int:
        """Sum of declared entry sizes."""
        return sum(e.size for e in self._entries)

    @property
    def tombstone_count(self) -> int:
        """Number of point tombstones on this page."""
        return sum(1 for e in self._entries if e.is_tombstone)

    def min_delete_key(self) -> Any:
        """Smallest secondary delete key on the page (``None`` if none)."""
        delete_keys = [e.delete_key for e in self._entries if e.delete_key is not None]
        return min(delete_keys) if delete_keys else None

    def max_delete_key(self) -> Any:
        """Largest secondary delete key on the page (``None`` if none)."""
        delete_keys = [e.delete_key for e in self._entries if e.delete_key is not None]
        return max(delete_keys) if delete_keys else None

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def find(self, key: Any) -> Entry | None:
        """Binary-search the page for ``key`` (§4.2.5 point-lookup path).

        Returns the most recent version present on this page, or ``None``.
        Within one run a key appears at most once, but defensive handling
        of duplicates keeps the method usable on merged scratch pages.
        """
        lo = bisect_left(self._keys, key)
        if lo >= len(self._keys) or self._keys[lo] != key:
            return None
        hi = bisect_right(self._keys, key)
        best = self._entries[lo]
        for entry in self._entries[lo + 1 : hi]:
            if entry.seqnum > best.seqnum:
                best = entry
        return best

    def range(self, lo: Any, hi: Any) -> list[Entry]:
        """Entries with sort key in the closed interval ``[lo, hi]``."""
        start = bisect_left(self._keys, lo)
        stop = bisect_right(self._keys, hi)
        return self._entries[start:stop]

    def entries_with_delete_key_in(self, d_lo: Any, d_hi: Any) -> list[Entry]:
        """Entries whose delete key falls in ``[d_lo, d_hi)``.

        Linear scan — used only on *boundary* pages of a secondary range
        delete (partial page drops, §4.2.2), where the paper likewise scans
        the page ("a tight for-loop").
        """
        return [
            e
            for e in self._entries
            if e.delete_key is not None and d_lo <= e.delete_key < d_hi
        ]

    def fully_inside_delete_range(self, d_lo: Any, d_hi: Any) -> bool:
        """True if *every* entry's delete key lies in ``[d_lo, d_hi)``.

        Such a page qualifies for a full page drop: it can be released to
        the file system without being read (§4.2.2).
        """
        if self.is_empty:
            return False
        for entry in self._entries:
            if entry.delete_key is None:
                return False
            if not (d_lo <= entry.delete_key < d_hi):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "Page(empty)"
        return f"Page({len(self)}/{self.capacity} S=[{self.min_key!r}..{self.max_key!r}])"
