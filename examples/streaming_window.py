"""Streaming state on a running window — FADE and KiWi working together.

§1 motivates Lethe with "streaming systems operating on a window of data"
(Flink-style state TTL, Heron windows): events keyed by a hash-like id,
continuously ingested, with the window's trailing edge deleted as it
slides. Two delete patterns hit the engine at once:

* the *windowing* purge — a secondary range delete on event time — runs
  every slide interval (KiWi's job);
* *retractions* — point deletes of individual event ids (late corrections)
  — must persist within a bounded delay for correctness audits
  (FADE's job).

The script slides a window over a stream and reports both mechanisms'
costs and guarantees from a single engine.

Run:  python examples/streaming_window.py
"""

import random

from repro import LSMEngine

EVENTS_PER_SLIDE = 600
SLIDES = 6
WINDOW_SLIDES = 3          # window covers the last 3 slide intervals
RETRACTION_RATE = 0.02     # 2% of events later retracted
D_TH = 1.5                 # persistence bound for retractions (seconds)


def main() -> None:
    engine = LSMEngine.lethe(
        delete_persistence_threshold=D_TH,
        delete_tile_pages=8,
        buffer_pages=16,
        file_pages=32,
        level1_tiered=True,
    )
    rng = random.Random(2024)
    event_time = 0
    live_ids: list[int] = []

    print(f"window = last {WINDOW_SLIDES} slides, "
          f"{EVENTS_PER_SLIDE} events/slide, retraction rate "
          f"{RETRACTION_RATE:.0%}, D_th = {D_TH}s\n")

    for slide in range(1, SLIDES + 1):
        # --- ingest one slide's worth of events -----------------------
        for _ in range(EVENTS_PER_SLIDE):
            event_id = rng.randrange(1 << 30)
            engine.put(event_id, f"event@{event_time}", delete_key=event_time)
            live_ids.append(event_id)
            event_time += 1
            # occasional late retraction of a recent event
            if rng.random() < RETRACTION_RATE and live_ids:
                victim = live_ids.pop(rng.randrange(len(live_ids)))
                engine.delete(victim)

        # --- slide the window: purge events older than the window -----
        cutoff = max(0, event_time - WINDOW_SLIDES * EVENTS_PER_SLIDE)
        if cutoff > 0:
            reads_before = engine.stats.pages_read
            report = engine.secondary_range_delete(0, cutoff)
            purge_io = engine.stats.pages_read - reads_before
            print(f"slide {slide}: purged events < t={cutoff} — "
                  f"{report.entries_dropped} entries, "
                  f"{report.full_page_drops} full page drops, "
                  f"{purge_io} pages of purge I/O")
        else:
            print(f"slide {slide}: window still filling")

    # --- audits ---------------------------------------------------------
    engine.advance_time(D_TH)
    print("\n== audits ==")
    stale = engine.secondary_range_lookup(0, event_time - WINDOW_SLIDES
                                          * EVENTS_PER_SLIDE)
    print(f"events older than the window still readable: {len(stale)}")
    latencies = engine.stats.persisted_latencies()
    slack = engine.config.buffer_entries / engine.config.ingestion_rate
    print(f"retractions persisted: {len(latencies)}; worst latency "
          f"{max(latencies):.2f}s (bound {D_TH}s + {slack:.2f}s slack)")
    print(f"tombstones still on disk: {engine.tombstones_on_disk()}")
    print(f"space amplification: {engine.space_amplification():.4f}")


if __name__ == "__main__":
    main()
