"""Ablation: FADE's saturation-time file-selection modes (§4.1.4).

SO (overlap-driven) optimizes write amplification; SD (delete-driven)
optimizes space amplification by compacting the files with the highest
estimated invalidation count first. DD maps to SD for saturation work.
The bench quantifies the trade on the standard 10%-deletes workload.
"""

from repro.bench.harness import BENCH_SCALE, make_lethe, workload_for
from repro.bench.reporting import format_table
from repro.core.config import FileSelectionMode


def test_ablation_file_selection(benchmark):
    def run():
        ingest_ops, _q, runtime = workload_for(
            BENCH_SCALE, delete_fraction=0.10, num_point_lookups=0
        )
        outcomes = {}
        for mode in (FileSelectionMode.SO, FileSelectionMode.SD):
            engine = make_lethe(
                BENCH_SCALE, d_th=0.05 * runtime, file_selection=mode
            )
            engine.ingest(ingest_ops)
            outcomes[mode.value] = {
                "samp": engine.space_amplification(),
                "bytes": engine.stats.total_bytes_written,
                "tombstones": engine.tombstones_on_disk(),
            }
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, f"{data['samp']:.4f}", data["bytes"], data["tombstones"]]
        for mode, data in outcomes.items()
    ]
    print("\n" + format_table(
        ["selection mode", "space amp", "total bytes written",
         "tombstones on disk"],
        rows,
        title="Ablation: SO vs SD saturation-time file selection",
    ) + "\n")
    assert set(outcomes) == {"so", "sd"}
