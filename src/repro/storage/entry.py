"""Entry model: key-value pairs, point tombstones, and range tombstones.

§3.1 of the paper fixes the on-disk record shapes this module mirrors:

* a **key-value pair** carries the sort key ``S``, a tombstone flag (clear),
  and a value whose attributes include the secondary **delete key** ``D``
  (e.g. a timestamp);
* a **point tombstone** carries the deleted sort key and a set flag — it is
  "orders of magnitude smaller than a key-value entry", which §3.2.1
  captures as the tombstone-size ratio ``λ = size(tombstone)/size(entry)``;
* a **range tombstone** invalidates a contiguous range of *sort* keys and
  is stored in a separate range-tombstone block within each file (§3.1.1).

Recency is decided by a monotonically increasing, insertion-driven
sequence number (*seqnum*), exactly as RocksDB does (§4.1.3): an entry with
a higher seqnum supersedes any entry with the same key and a lower seqnum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class EntryKind(enum.Enum):
    """What a record represents."""

    PUT = "put"
    TOMBSTONE = "tombstone"


@dataclass(frozen=True, order=False)
class Entry:
    """One record of the LSM-tree: a put or a point tombstone.

    Attributes
    ----------
    key:
        The sort key ``S``. Must be orderable and hashable; the library is
        generic, the test-suite and benches use integers.
    seqnum:
        Monotonic insertion sequence number; larger = more recent.
    kind:
        :class:`EntryKind.PUT` or :class:`EntryKind.TOMBSTONE`.
    value:
        Payload for puts, ``None`` for tombstones.
    delete_key:
        The secondary delete key ``D`` (e.g. creation timestamp) carried
        inside the value. Tombstones have no delete key (``None``).
    size:
        Declared on-disk footprint in bytes. Puts default to the configured
        entry size, tombstones to the (much smaller) tombstone size; the
        engine sets these at creation so space accounting honours λ.
    write_time:
        Simulated time the record entered the memory buffer. For
        tombstones this is what FADE's ``amax`` (age of the oldest
        tombstone in a file) is computed from (§4.1.3).
    """

    key: Any
    seqnum: int
    kind: EntryKind
    value: Any = None
    delete_key: Any = None
    size: int = 1
    write_time: float = 0.0

    def __post_init__(self) -> None:
        if self.seqnum < 0:
            raise ValueError(f"seqnum must be non-negative, got {self.seqnum}")
        if self.size < 1:
            raise ValueError(f"size must be >= 1 byte, got {self.size}")
        if self.kind is EntryKind.TOMBSTONE and self.value is not None:
            raise ValueError("tombstones must not carry a value")

    @property
    def is_tombstone(self) -> bool:
        """True for point tombstones."""
        return self.kind is EntryKind.TOMBSTONE

    def supersedes(self, other: "Entry") -> bool:
        """True if this record invalidates ``other`` (same key, newer)."""
        return self.key == other.key and self.seqnum > other.seqnum

    def sort_token(self) -> tuple:
        """Total order used inside sorted runs: by key, then newest first.

        Within one run a key appears at most once, but merge iterators rely
        on this order to see the most recent version of a key first.
        """
        return (self.key, -self.seqnum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "DEL" if self.is_tombstone else "PUT"
        return f"Entry({tag} key={self.key!r} seq={self.seqnum} D={self.delete_key!r})"


@dataclass(frozen=True)
class RangeTombstone:
    """A range delete on the sort key: invalidates ``[start, end)``.

    Stored in a separate range-tombstone block within files (§3.1.1); point
    and range lookups consult these blocks (the paper's in-memory
    "histogram of deleted ranges") to suppress older matching entries.

    Attributes
    ----------
    start, end:
        Half-open sort-key interval ``[start, end)``; ``start < end``.
    seqnum:
        Insertion sequence number; covers entries with smaller seqnums.
    size:
        Declared bytes (two keys plus a flag).
    write_time:
        Simulated insertion time (feeds FADE's ``amax``).
    """

    start: Any
    end: Any
    seqnum: int
    size: int = 1
    write_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(
                f"range tombstone requires start < end, got [{self.start}, {self.end})"
            )
        if self.seqnum < 0:
            raise ValueError(f"seqnum must be non-negative, got {self.seqnum}")

    def covers(self, key: Any, seqnum: int) -> bool:
        """True if this tombstone invalidates version ``seqnum`` of ``key``."""
        return self.start <= key < self.end and seqnum < self.seqnum

    def overlaps_keys(self, lo: Any, hi: Any) -> bool:
        """True if ``[start, end)`` intersects the closed interval ``[lo, hi]``."""
        return self.start <= hi and lo < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeTombstone([{self.start!r},{self.end!r}) seq={self.seqnum})"


@dataclass
class SequenceGenerator:
    """Monotonic seqnum source shared by one engine instance."""

    _next: int = 0

    def next(self) -> int:
        """Return the next sequence number (starting at 0)."""
        value = self._next
        self._next += 1
        return value

    @property
    def current(self) -> int:
        """The next seqnum that *would* be handed out."""
        return self._next


def latest_wins(entries: list[Entry]) -> Entry:
    """Return the most recent version among entries sharing one key.

    Raises ``ValueError`` on an empty list or mixed keys; used by merge
    code paths and by tests as an executable specification of recency.
    """
    if not entries:
        raise ValueError("latest_wins requires at least one entry")
    first_key = entries[0].key
    best = entries[0]
    for entry in entries[1:]:
        if entry.key != first_key:
            raise ValueError(
                f"latest_wins requires a single key, saw {first_key!r} and {entry.key!r}"
            )
        if entry.seqnum > best.seqnum:
            best = entry
    return best
