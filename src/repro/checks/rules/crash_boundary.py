"""crash-boundary: durable writes only behind the fault injector.

Crash-recovery testing enumerates every physical write through the
labeled :class:`repro.storage.persist.FaultInjector` boundaries in
``storage/persist.py``. A durable write issued anywhere else — a bare
``open(..., "wb")``, an ``os.rename`` — is invisible to crash
enumeration: the recovery suite would never simulate a crash at that
write, so its durability is untested by construction.

Banned outside the whitelist: ``os.fsync`` / ``os.fdatasync`` /
``os.rename`` / ``os.replace`` / ``os.unlink`` / ``os.remove`` /
``os.truncate`` / ``os.ftruncate``, and any ``open()`` / ``.open()``
call whose literal mode writes bytes (contains ``b`` plus one of
``w``/``a``/``x``/``+``).

Whitelisted: ``storage/persist.py`` itself, plus tests, benchmarks,
and tools — harness code manages its own files.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint import Finding, ParsedModule, Rule, path_in

_OS_FUNCS = {
    "fsync",
    "fdatasync",
    "rename",
    "replace",
    "unlink",
    "remove",
    "truncate",
    "ftruncate",
}

WHITELIST = (
    "src/repro/storage/persist.py",
    "tests/",
    "benchmarks/",
    "tools/",
)


class CrashBoundaryRule(Rule):
    name = "crash-boundary"
    description = (
        "durable writes (os.fsync/rename/unlink, binary-write open) only "
        "inside storage/persist.py"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if path_in(module.rel, WHITELIST):
            return
        os_aliases = _os_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            banned = _banned_call(node, os_aliases)
            if banned is None:
                continue
            yield Finding(
                rule=self.name,
                path=module.rel,
                line=node.lineno,
                message=(
                    f"{banned} outside storage/persist.py bypasses the "
                    f"fault-injection boundary"
                ),
            )


def _os_aliases(tree: ast.AST) -> set[str]:
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "os":
                    aliases.add(alias.asname or "os")
    return aliases


def _write_mode(node: ast.Call) -> str | None:
    """The call's literal mode string if it writes bytes."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        text = mode.value
        if "b" in text and any(flag in text for flag in "wax+"):
            return text
    return None


def _banned_call(node: ast.Call, os_aliases: set[str]) -> str | None:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in os_aliases
        and func.attr in _OS_FUNCS
    ):
        return f"{func.value.id}.{func.attr}()"
    is_open = (isinstance(func, ast.Name) and func.id == "open") or (
        isinstance(func, ast.Attribute) and func.attr == "open"
    )
    if is_open:
        mode = _write_mode(node)
        if mode is not None:
            return f"open(..., {mode!r})"
    return None
