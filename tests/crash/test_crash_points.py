"""Exhaustive crash-point enumeration on deterministic sequences.

For a fixed operation sequence covering every durable code path (puts,
point/range/secondary deletes, flushes, idle time, a checkpoint), kill
the backend at *every* write boundary in turn and require recovery to
land exactly on the dict model before or after the in-flight operation,
honour the D_th WAL invariant, and keep working afterwards.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.core.config import lethe_config

from tests.crash.harness import (
    CRASH_FLAVOURS,
    assert_dth_invariant,
    assert_recovery_matches_model,
    continue_after_recovery,
    count_crash_points,
    engine_surface,
    model_surface,
    run_crash,
    trace_crash_points,
)


def deterministic_ops() -> list[tuple]:
    """~40 ops that exercise every durable write boundary type."""
    ops: list[tuple] = []
    for i in range(26):
        ops.append(("put", i % 13, i * 4 % 120))
        if i % 7 == 3:
            ops.append(("delete", (i * 3) % 13))
        if i % 11 == 5:
            ops.append(("range_delete", 2, 4))
        if i % 13 == 6:
            ops.append(("delete_range", 5, 3))
        if i % 9 == 7:
            ops.append(("srd", 10, 25))
        if i == 12:
            ops.append(("advance_time", 0.05))
        if i == 18:
            ops.append(("checkpoint",))
    ops.append(("flush",))
    return ops


@pytest.mark.parametrize("name,config_factory", CRASH_FLAVOURS)
def test_every_crash_point_recovers_to_a_model_state(name, config_factory):
    ops = deterministic_ops()
    total = count_crash_points(ops, config_factory)
    assert total > 20, f"[{name}] suspiciously few write boundaries: {total}"
    for crash_at in range(total):
        with tempfile.TemporaryDirectory() as tmp:
            run = run_crash(ops, config_factory, crash_at, tmp)
            assert run.crashed, f"[{name}] crash point {crash_at} never fired"
            context = f"{name}@{crash_at}"
            assert_recovery_matches_model(run, context)
            assert_dth_invariant(run.recovered, context)


@pytest.mark.parametrize("name,config_factory", CRASH_FLAVOURS)
def test_sampled_crash_points_continue_to_the_final_model(name, config_factory):
    """Recovered engines keep serving the rest of the sequence correctly."""
    ops = deterministic_ops()
    total = count_crash_points(ops, config_factory)
    for crash_at in range(0, total, 5):
        with tempfile.TemporaryDirectory() as tmp:
            run = run_crash(ops, config_factory, crash_at, tmp)
            assert run.crashed
            assert_recovery_matches_model(run, f"{name}@{crash_at}")
            engine, model = continue_after_recovery(run)
            assert engine_surface(engine) == model_surface(model), (
                f"[{name}@{crash_at}] recovered engine diverged while "
                "serving the remainder of the sequence"
            )


@pytest.mark.parametrize("name,config_factory", CRASH_FLAVOURS)
def test_recovery_is_idempotent(name, config_factory):
    """Recovering twice (a crash loop) lands on the same state."""
    ops = deterministic_ops()
    total = count_crash_points(ops, config_factory)
    crash_at = total // 2
    with tempfile.TemporaryDirectory() as tmp:
        run = run_crash(ops, config_factory, crash_at, tmp)
        first = engine_surface(run.recovered)
        from repro.core.engine import LSMEngine

        again = LSMEngine.open(run.path)
        assert engine_surface(again) == first


def test_no_crash_run_equals_model():
    """With the injector merely counting, the durable engine is exact."""
    name, config_factory = CRASH_FLAVOURS[2]
    ops = deterministic_ops()
    with tempfile.TemporaryDirectory() as tmp:
        run = run_crash(ops, config_factory, 10**9, tmp)
        assert not run.crashed
        assert run.in_flight_op is None
        assert engine_surface(run.recovered) == model_surface(run.model_before)


# ---------------------------------------------------------------------------
# The D_th rewrite boundary, targeted by its own label
# ---------------------------------------------------------------------------


def _rewrite_config():
    """A FADE config whose D_th routine fires mid-sequence.

    Tiny ``D_th`` plus a buffer too large to flush on its own: the idle
    check inside ``advance_time`` finds over-age segments holding live
    (un-flushed) records and must copy them to a fresh segment — the
    exact fresh-segment write that used to hide behind the generic
    ``wal-append`` label.
    """
    overrides = dict(TINY_REWRITE)
    return lethe_config(0.005, delete_tile_pages=4, **overrides)


TINY_REWRITE = dict(
    buffer_pages=16,     # 64-entry buffer: the puts below never flush
    page_entries=4,
    file_pages=8,
    size_ratio=4,
    ingestion_rate=1024.0,
    fsync=False,
)


def rewrite_ops() -> list[tuple]:
    ops: list[tuple] = [("put", i % 13, i * 4 % 120) for i in range(24)]
    ops.append(("advance_time", 0.05))  # segments age past D_th = 5 ms
    ops.extend(("put", (i * 5) % 13, i * 7 % 120) for i in range(8))
    ops.append(("flush",))
    return ops


def test_wal_rewrite_is_a_distinct_enumerable_crash_point():
    """Fault injection can target the D_th rewrite boundary by label.

    Kills the backend at *every* ``wal-rewrite`` boundary of a sequence
    engineered to fire the routine, and requires recovery to match the
    oracle and re-satisfy §4.1.5 — previously the rewrite shared the
    ``wal-append`` label, so this boundary could not be aimed at.
    """
    ops = rewrite_ops()
    labels = trace_crash_points(ops, _rewrite_config).labels
    rewrite_points = [
        index for index, label in enumerate(labels) if label == "wal-rewrite"
    ]
    assert rewrite_points, (
        f"the sequence never crossed a wal-rewrite boundary: {labels}"
    )
    assert "wal-append" not in labels, (
        "ordinary appends should carry batch-count labels (wal-append[n]), "
        "leaving the bare name free for grep-ability checks"
    )
    for crash_at in rewrite_points:
        with tempfile.TemporaryDirectory() as tmp:
            run = run_crash(ops, _rewrite_config, crash_at, tmp)
            assert run.crashed
            context = f"wal-rewrite@{crash_at}"
            assert_recovery_matches_model(run, context)
            assert_dth_invariant(run.recovered, context)
            engine, model = continue_after_recovery(run)
            assert engine_surface(engine) == model_surface(model)


# ---------------------------------------------------------------------------
# Range-tombstone write boundaries, targeted by their own labels
# ---------------------------------------------------------------------------


def _rangedel_config():
    return lethe_config(0.5, delete_tile_pages=4, **dict(
        buffer_pages=4,
        page_entries=4,
        file_pages=8,
        size_ratio=4,
        ingestion_rate=1024.0,
        fsync=False,
    ))


def rangedel_ops() -> list[tuple]:
    """A sequence crossing both range-tombstone write boundaries:
    the WAL append of the tombstone record itself (``wal-append-rt``)
    and a run-blob write carrying fragments (``run-blob-rt``)."""
    ops: list[tuple] = [("put", i % 13, i * 4 % 120) for i in range(10)]
    ops.append(("delete_range", 2, 5))
    ops.extend(("put", (i * 3) % 13, i * 5 % 120) for i in range(6))
    ops.append(("flush",))  # fragments ride the flushed run's blob
    ops.append(("delete_range", 0, 3))
    ops.append(("flush",))
    return ops


def _enumerate_label(prefix: str) -> list[int]:
    ops = rangedel_ops()
    labels = trace_crash_points(ops, _rangedel_config).labels
    points = [
        index for index, label in enumerate(labels)
        if label.startswith(prefix)
    ]
    assert points, (
        f"the sequence never crossed a {prefix} boundary: {labels}"
    )
    return points


def _check_exact_recovery(points: list[int], context_prefix: str) -> None:
    ops = rangedel_ops()
    for crash_at in points:
        with tempfile.TemporaryDirectory() as tmp:
            run = run_crash(ops, _rangedel_config, crash_at, tmp)
            assert run.crashed, f"[{context_prefix}@{crash_at}] never fired"
            context = f"{context_prefix}@{crash_at}"
            assert_recovery_matches_model(run, context)
            assert_dth_invariant(run.recovered, context)
            engine, model = continue_after_recovery(run)
            assert engine_surface(engine) == model_surface(model), (
                f"[{context}] recovered engine diverged while serving "
                "the remainder of the sequence"
            )


def test_range_tombstone_wal_append_is_a_distinct_crash_point():
    """Killing the backend at every ``wal-append-rt`` boundary — the
    durable write of the range-tombstone WAL record — recovers exactly:
    either the delete never happened or it happened whole. The suffixed
    label keeps RT appends distinguishable from ordinary appends while
    sharing their batch-count convention."""
    points = _enumerate_label("wal-append-rt")
    _check_exact_recovery(points, "wal-append-rt")


def test_range_tombstone_run_blob_is_a_distinct_crash_point():
    """Killing the backend at every ``run-blob-rt`` boundary — a run
    blob whose range-tombstone block is non-empty, i.e. the fragment
    rewrite at flush/compaction commit — recovers exactly. A torn blob
    must lose the whole flush (the WAL still holds the records), never
    resurrect keys the fragments covered."""
    points = _enumerate_label("run-blob-rt")
    _check_exact_recovery(points, "run-blob-rt")
