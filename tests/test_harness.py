"""Unit tests for the experiment harness."""

import pytest

from repro.bench.harness import (
    ExperimentScale,
    RunResult,
    make_baseline,
    make_lethe,
    preload_classic_engine,
    preload_kiwi_engine,
    run_engine,
    workload_for,
)
from repro.workloads.spec import DeleteKeyMode

SMALL = ExperimentScale(num_inserts=600, num_point_lookups=100)


class TestWorkloadFor:
    def test_runtime_matches_write_ops(self):
        ingest_ops, query_ops, runtime = workload_for(SMALL, 0.05)
        assert runtime == pytest.approx(len(ingest_ops) / SMALL.ingestion_rate)
        assert len(query_ops) == SMALL.num_point_lookups

    def test_deterministic_per_scale(self):
        a, _, _ = workload_for(SMALL, 0.05)
        b, _, _ = workload_for(SMALL, 0.05)
        assert a == b

    def test_delete_fraction_respected(self):
        ingest_ops, _, _ = workload_for(SMALL, 0.10)
        deletes = sum(1 for op in ingest_ops if op[0] == "delete")
        assert deletes == pytest.approx(60, abs=3)


class TestEngineFactories:
    def test_baseline_has_no_fade(self):
        engine = make_baseline(SMALL)
        assert not engine.config.fade_enabled
        assert engine.config.level1_tiered

    def test_lethe_has_fade(self):
        engine = make_lethe(SMALL, d_th=1.0, delete_tile_pages=4)
        assert engine.config.fade_enabled
        assert engine.config.kiwi_enabled

    def test_overrides_win(self):
        engine = make_baseline(SMALL, level1_tiered=False)
        assert not engine.config.level1_tiered


class TestRunEngine:
    def test_collects_metrics(self):
        ingest_ops, query_ops, runtime = workload_for(SMALL, 0.05)
        result = run_engine(
            make_baseline(SMALL), "test", ingest_ops, query_ops, runtime
        )
        assert isinstance(result, RunResult)
        assert result.name == "test"
        assert result.engine.stats.point_lookups == len(query_ops)
        assert result.total_bytes_written > 0
        assert result.read_throughput > 0


class TestPreload:
    def test_kiwi_preload_consolidated(self):
        engine, generator = preload_kiwi_engine(
            SMALL, delete_tile_pages=4, delete_key_mode=DeleteKeyMode.UNIFORM
        )
        assert len(generator.inserted_keys) == SMALL.num_inserts
        # consolidation leaves a single leveled run and clean read counters
        deepest = engine.tree.deepest_nonempty_level()
        assert engine.tree.level(deepest).run_count == 1
        assert engine.stats.point_lookups == 0

    def test_classic_preload(self):
        engine, generator = preload_classic_engine(SMALL)
        assert engine.tree.total_entries == SMALL.num_inserts
        assert not engine.config.kiwi_enabled

    def test_kiwi_preload_unconsolidated(self):
        engine, _ = preload_kiwi_engine(SMALL, 4, consolidate=False)
        assert engine.stats.full_tree_compactions == 0
