"""Bench for Fig 6G: average write/mixed latency vs data size.

Paper shape: write latency flat in data size, Lethe 0.1–3% above RocksDB;
mixed-workload latency slightly better for Lethe (0.5–4%).
"""

from repro.bench import experiments as ex
from repro.bench.harness import ExperimentScale

from benchmarks.conftest import emit

SCALE = ExperimentScale(num_inserts=4000, num_point_lookups=0)


def test_fig6g_latency_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: ex.fig6g_latency_scaling(
            SCALE, size_multipliers=(0.25, 0.5, 1.0, 2.0)
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for series_name in ("write-RocksDB", "write-Lethe",
                        "mixed-RocksDB", "mixed-Lethe"):
        assert all(v > 0 for v in result.series[series_name])
