"""Exception hierarchy for the Lethe reproduction.

All library-specific errors derive from :class:`LetheError` so callers can
catch one base class. Errors are deliberately fine-grained: configuration
problems, storage-layer violations, and compaction invariant breaches are
distinct failure modes with distinct remedies.
"""

from __future__ import annotations


class LetheError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(LetheError):
    """Raised when an :class:`~repro.core.config.EngineConfig` is invalid.

    Examples: a non-positive size ratio, a delete-tile granularity that does
    not divide the file size, or a delete persistence threshold of zero.
    """


class StorageError(LetheError):
    """Raised on violations of the simulated storage layer's contracts.

    Examples: reading a page of a file that was already freed, or writing a
    page beyond a file's allocated extent.
    """


class PageFullError(StorageError):
    """Raised when appending an entry to a page that is at capacity."""


class ImmutableFileError(StorageError):
    """Raised when attempting to mutate a sealed (on-disk, immutable) file.

    LSM runs are immutable once written; the only sanctioned mutation is the
    KiWi *page drop*, which goes through a dedicated code path.
    """


class CompactionError(LetheError):
    """Raised when a compaction violates an LSM invariant.

    Examples: merging files with overlapping key ranges inside one level of
    a leveled tree, or producing out-of-order output runs.
    """


class WALError(LetheError):
    """Raised on write-ahead-log misuse (e.g. replaying a purged segment)."""


class KeyWeavingError(LetheError):
    """Raised when a KiWi layout invariant is violated.

    Examples: a delete tile whose pages are not ordered on the delete key,
    or a secondary range delete issued against a classic (h=1) layout file
    through the tile-drop path.
    """


class PersistenceError(StorageError):
    """Raised on durable-backend contract violations.

    Examples: opening a directory that holds no recoverable manifest,
    loading a run blob whose header names an unknown layout, or recovering
    state written for a different engine configuration.
    """


class TuningError(LetheError):
    """Raised when a tuning computation has no feasible solution.

    Example: Eq. (3) of the paper yielding ``h < 1`` for a workload whose
    lookup frequency overwhelms its secondary-range-delete frequency.
    """
