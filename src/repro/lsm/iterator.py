"""K-way merge with LSM version-resolution and tombstone semantics.

Used by compactions (§2: "entries with a matching key are consolidated and
only the most recent valid entry is retained") and by range lookups (§2:
"a range lookup returns the most recent versions of the target keys by
sort-merging the qualifying key ranges across all runs").

The resolution rules (§3.1.1):

* among several versions of a key, the highest seqnum wins; older versions
  are *invalid* and dropped (compaction) or skipped (reads);
* a point tombstone is itself retained by intermediate-level compactions —
  "there might be more (older) entries with the same delete key in
  subsequent compactions" — and discarded only when the compaction output
  lands in the **last level**, which is the moment the logical delete
  becomes persistent;
* a range tombstone drops every covered older entry it meets; the
  tombstone itself survives to the output's range-tombstone block except
  at the last level.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.storage.entry import Entry, RangeTombstone


@dataclass
class MergeOutcome:
    """What a compaction merge produced and what it eliminated.

    ``entries`` / ``range_tombstones`` form the output run;
    ``dropped_tombstones`` are point tombstones discarded at the last
    level, ``dropped_range_tombstones`` likewise;
    ``invalid_entries_dropped`` counts superseded versions and
    range-covered entries purged.
    """

    entries: list[Entry] = field(default_factory=list)
    range_tombstones: list[RangeTombstone] = field(default_factory=list)
    dropped_tombstones: list[Entry] = field(default_factory=list)
    dropped_range_tombstones: list[RangeTombstone] = field(default_factory=list)
    invalid_entries_dropped: int = 0


def merge_sorted_streams(streams: Iterable[Iterator[Entry]]) -> Iterator[Entry]:
    """Heap-merge S-sorted streams into one stream ordered by sort token.

    For equal keys the most recent version (largest seqnum) comes first,
    which the resolution pass below relies on.
    """
    return heapq.merge(*streams, key=lambda e: e.sort_token())


def resolve_versions(
    merged: Iterable[Entry],
    range_tombstones: list[RangeTombstone],
) -> Iterator[Entry]:
    """Keep the newest version per key, then apply range-tombstone cover.

    Yields the survivor for each distinct key (which may be a point
    tombstone). Entries covered by a newer range tombstone are dropped
    even if they are the newest point version of their key.
    """
    current_key: Any = object()
    first_for_key = False
    for entry in merged:
        if entry.key != current_key:
            current_key = entry.key
            first_for_key = True
        else:
            first_for_key = False
        if not first_for_key:
            continue
        if any(rt.covers(entry.key, entry.seqnum) for rt in range_tombstones):
            continue
        yield entry


def merge_for_compaction(
    streams: list[Iterator[Entry]],
    range_tombstones: list[RangeTombstone],
    into_last_level: bool,
    extra_cover_tombstones: list[RangeTombstone] | None = None,
) -> MergeOutcome:
    """Full compaction merge.

    Parameters
    ----------
    streams:
        S-sorted entry streams of the participating files.
    range_tombstones:
        Range tombstones carried by the participating files. They drop
        covered entries here and are retained in the output (unless the
        output is the last level).
    into_last_level:
        When true, surviving point tombstones and all range tombstones are
        discarded — this is delete *persistence* (§3.1.1).
    extra_cover_tombstones:
        Range tombstones from *upper* levels that are not participating in
        this compaction. They may cover entries being merged (a newer
        delete above), but they must NOT be consumed or re-emitted here —
        they still live in their own files.
    """
    outcome = MergeOutcome()
    covering = list(range_tombstones)
    if extra_cover_tombstones:
        covering += extra_cover_tombstones

    merged = merge_sorted_streams(streams)
    current_key: Any = object()
    for entry in merged:
        if entry.key != current_key:
            current_key = entry.key
            survivor = True
        else:
            survivor = False
        if not survivor:
            outcome.invalid_entries_dropped += 1
            continue
        if any(rt.covers(entry.key, entry.seqnum) for rt in covering):
            outcome.invalid_entries_dropped += 1
            continue
        if entry.is_tombstone and into_last_level:
            # Compacted with the last level: nothing older can exist, the
            # delete is now persistent and the tombstone itself goes away.
            outcome.dropped_tombstones.append(entry)
            continue
        outcome.entries.append(entry)

    if into_last_level:
        outcome.dropped_range_tombstones.extend(range_tombstones)
    else:
        outcome.range_tombstones.extend(
            sorted(range_tombstones, key=lambda rt: (rt.start, rt.seqnum))
        )
    return outcome


def merge_for_read(
    streams: list[Iterator[Entry]],
    range_tombstones: list[RangeTombstone],
) -> list[Entry]:
    """Range-lookup merge: newest live PUT per key, tombstones suppressed.

    Range queries "have to read and discard" tombstones and invalid
    entries (§3.2.2) — the discarding happens here, after the I/O of
    fetching them was already paid by the caller.
    """
    result: list[Entry] = []
    for entry in resolve_versions(merge_sorted_streams(streams), range_tombstones):
        if entry.is_tombstone:
            continue
        result.append(entry)
    return result
