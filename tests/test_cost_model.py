"""Unit tests for the analytical cost models (§3.2) and Table 2."""

import pytest

from repro.analysis.cost_model import CostModel, Design, ModelParams, Policy
from repro.analysis.table2 import compute_table2, render_table2
from repro.core.errors import ConfigError


@pytest.fixture
def params():
    return ModelParams()


def model(design, policy=Policy.LEVELING, params=None):
    return CostModel(params or ModelParams(), design, policy)


class TestModelParams:
    def test_defaults_match_table1(self, params):
        assert params.num_entries == 2**20
        assert params.size_ratio == 10
        assert params.buffer_pages == 512
        assert params.page_entries == 4
        assert params.entry_size == 1024
        assert params.tombstone_ratio == 0.1
        assert params.ingestion_rate == 1024.0
        assert params.tile_pages == 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            ModelParams(num_entries=0)
        with pytest.raises(ConfigError):
            ModelParams(tombstone_ratio=0.0)
        with pytest.raises(ConfigError):
            ModelParams(tile_pages=0)

    def test_fpr_formula(self, params):
        # 10MB over 2^20 entries = 80 bits/key → essentially zero FPR;
        # check monotonicity instead of magnitude
        assert params.fpr(params.num_entries) < params.fpr(
            params.num_entries * 100
        )


class TestFADERows:
    def test_fade_operates_on_n_delta(self, params):
        soa = model(Design.STATE_OF_THE_ART)
        fade = model(Design.FADE)
        assert fade.entries_in_tree() < soa.entries_in_tree()
        assert fade.entries_in_tree() == params.n_delta

    def test_fade_bounds_space_amp_with_deletes(self):
        soa = model(Design.STATE_OF_THE_ART)
        fade = model(Design.FADE)
        assert fade.space_amp_with_deletes() < soa.space_amp_with_deletes()
        # FADE's bound equals the no-delete bound (Table 2 row 3)
        assert fade.space_amp_with_deletes() == fade.space_amp_without_deletes()

    def test_fade_persistence_is_dth(self):
        fade = model(Design.FADE)
        assert fade.delete_persistence_latency(d_th=60.0) == 60.0

    def test_soa_persistence_is_ingestion_bound(self, params):
        soa = model(Design.STATE_OF_THE_ART)
        expected = (
            params.size_ratio ** (params.num_levels - 1)
            * params.buffer_pages
            * params.page_entries
            / params.ingestion_rate
        )
        assert soa.delete_persistence_latency() == pytest.approx(expected)

    def test_tiering_persistence_one_t_worse(self, params):
        leveled = model(Design.STATE_OF_THE_ART, Policy.LEVELING)
        tiered = model(Design.STATE_OF_THE_ART, Policy.TIERING)
        assert tiered.delete_persistence_latency() == pytest.approx(
            params.size_ratio * leveled.delete_persistence_latency()
        )


class TestKiWiRows:
    def test_kiwi_lookups_scale_with_h(self, params):
        soa = model(Design.STATE_OF_THE_ART)
        kiwi = model(Design.KIWI)
        assert kiwi.zero_result_lookup() == pytest.approx(
            params.tile_pages * soa.zero_result_lookup()
        )
        assert kiwi.short_range_lookup() == pytest.approx(
            params.tile_pages * soa.short_range_lookup()
        )

    def test_kiwi_srd_cheaper_by_h(self, params):
        soa = model(Design.STATE_OF_THE_ART)
        kiwi = model(Design.KIWI)
        assert kiwi.secondary_range_delete_cost() == pytest.approx(
            soa.secondary_range_delete_cost() / params.tile_pages
        )

    def test_kiwi_long_range_unchanged(self):
        soa = model(Design.STATE_OF_THE_ART)
        kiwi = model(Design.KIWI)
        assert kiwi.long_range_lookup() == pytest.approx(soa.long_range_lookup())

    def test_kiwi_write_path_unchanged(self):
        soa = model(Design.STATE_OF_THE_ART)
        kiwi = model(Design.KIWI)
        assert kiwi.write_amplification() == soa.write_amplification()
        assert kiwi.insert_update_cost() == soa.insert_update_cost()


class TestLetheRows:
    def test_lethe_combines_both(self, params):
        lethe = model(Design.LETHE)
        fade = model(Design.FADE)
        kiwi = model(Design.KIWI)
        assert lethe.entries_in_tree() == fade.entries_in_tree()
        assert lethe.secondary_range_delete_cost() < kiwi.secondary_range_delete_cost()
        assert lethe.delete_persistence_latency(60.0) == 60.0

    def test_leveling_vs_tiering_wamp(self, params):
        lev = model(Design.LETHE, Policy.LEVELING)
        tier = model(Design.LETHE, Policy.TIERING)
        assert lev.write_amplification() == pytest.approx(
            params.size_ratio * tier.write_amplification()
        )

    def test_all_rows_complete(self):
        rows = model(Design.LETHE).all_rows(d_th=60.0)
        assert len(rows) == 13
        assert all(isinstance(v, (int, float)) for v in rows.values())


class TestTable2:
    def test_markers(self):
        table = compute_table2()
        # SoA column is the reference: always "•"
        for row in table.values():
            assert row["state_of_the_art"].marker == "•"
        # FADE strictly improves persistence; KiWi's lookups are tunable
        assert table["delete_persistence_latency"]["fade"].marker == "▲"
        assert table["zero_result_lookup"]["kiwi"].marker == "♦"
        assert table["secondary_range_delete_cost"]["lethe"].marker == "♦"
        # identical cells are "•"
        assert table["write_amplification"]["fade"].marker in ("•", "▲")

    def test_render_contains_all_rows(self):
        text = render_table2()
        for label in ("Space amp", "Write amplification", "Secondary range delete",
                      "Main memory footprint"):
            assert label in text

    def test_tiering_table_renders(self):
        text = render_table2(policy=Policy.TIERING)
        assert "Entries in tree" in text
