"""Wire-protocol properties: round trips and adversarial inputs.

Round-trip coverage is exhaustive over the frame vocabulary — every
request and response kind goes through ``encode → frame split → decode``
with Hypothesis-generated contents. The adversarial half feeds the
decoder what a hostile or broken peer would: truncated frames, garbage
tags, length prefixes announcing gigabytes — and asserts the decoder
answers with :class:`ProtocolError` (the server's close-connection
signal) instead of crashing or buffering unbounded memory.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import protocol
from repro.net.protocol import (
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    frame,
    parse_length,
)

KEYS = st.integers(min_value=-(2**62), max_value=2**62)
# Values cover what the engine can hold: bytes on the hot path, and a
# sample of picklables through the fallback tag.
VALUES = st.one_of(
    st.none(),
    st.binary(max_size=256),
    st.integers(),
    st.text(max_size=32),
    st.tuples(st.integers(), st.binary(max_size=16)),
)


def split_payload(wire: bytes) -> bytes:
    """Strip and validate the length prefix of one encoded frame."""
    length = parse_length(wire[:LENGTH_PREFIX_BYTES])
    payload = wire[LENGTH_PREFIX_BYTES:]
    assert len(payload) == length
    return payload


REQUESTS = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES, st.one_of(st.none(), KEYS)),
    st.tuples(st.just("get"), KEYS),
    st.tuples(st.just("delete"), KEYS),
    st.tuples(st.just("range_delete"), KEYS, KEYS),
    # delete_range frames are validated (lo <= hi), so generate ordered
    # pairs; the adversarial suite covers the inverted ones.
    st.tuples(st.just("delete_range"), KEYS, KEYS).map(
        lambda t: (t[0], min(t[1], t[2]), max(t[1], t[2]))
    ),
    st.tuples(st.just("scan"), KEYS, KEYS),
    st.tuples(st.just("secondary_range_lookup"), KEYS, KEYS),
    st.just(("flush",)),
    st.just(("ping",)),
)

RESPONSES = st.one_of(
    st.just(("ok",)),
    st.tuples(st.just("value"), VALUES),
    st.just(("miss",)),
    st.tuples(st.just("pairs"), st.lists(st.tuples(KEYS, VALUES), max_size=20)),
    st.just(("pong",)),
    st.tuples(st.just("error"), st.text(max_size=100)),
)


class TestRoundTrip:
    @given(op=REQUESTS)
    def test_every_request_kind(self, op):
        assert decode_request(split_payload(encode_request(op))) == op

    @given(resp=RESPONSES)
    def test_every_response_kind(self, resp):
        decoded = decode_response(split_payload(encode_response(resp)))
        assert decoded == resp

    @given(ops=st.lists(REQUESTS, max_size=20), chunk=st.integers(1, 64))
    def test_frame_decoder_reassembles_any_chunking(self, ops, chunk):
        wire = b"".join(encode_request(op) for op in ops)
        decoder = FrameDecoder()
        payloads = []
        for start in range(0, len(wire), chunk):
            payloads.extend(decoder.feed(wire[start : start + chunk]))
        assert [decode_request(p) for p in payloads] == ops
        assert decoder.buffered == 0

    def test_put_without_delete_key_normalizes(self):
        wire = encode_request(("put", 7, b"x", None))
        assert decode_request(split_payload(wire)) == ("put", 7, b"x", None)


class TestAdversarial:
    def test_oversized_length_prefix_rejected_before_allocation(self):
        # 2 GiB announced; the decoder must refuse at header time — the
        # four header bytes are all it ever buffers.
        header = struct.pack("<I", 2**31)
        with pytest.raises(ProtocolError):
            parse_length(header)
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(header)
        assert decoder.buffered <= LENGTH_PREFIX_BYTES

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError):
            parse_length(struct.pack("<I", 0))
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack("<I", 0))

    def test_frame_decoder_buffer_stays_bounded(self):
        decoder = FrameDecoder(max_frame=1024)
        # A stream of maximal legal frames: buffered bytes never exceed
        # prefix + one frame, no matter how much was fed.
        wire = (struct.pack("<I", 1024) + bytes(1024)) * 8
        for start in range(0, len(wire), 100):
            decoder.feed(wire[start : start + 100])
            assert decoder.buffered <= LENGTH_PREFIX_BYTES + 1024

    @given(tag=st.integers(0, 255), body=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_garbage_tags_and_bodies_never_crash(self, tag, body):
        payload = bytes([tag]) + body
        for decode in (decode_request, decode_response):
            try:
                decode(payload)
            except ProtocolError:
                pass  # the only acceptable failure mode

    @given(op=REQUESTS, cut=st.integers(min_value=0, max_value=200))
    def test_truncated_request_bodies_raise_protocol_error(self, op, cut):
        payload = split_payload(encode_request(op))
        truncated = payload[: min(cut, len(payload) - 1)]
        if not truncated:
            with pytest.raises(ProtocolError):
                decode_request(truncated)
            return
        try:
            decoded = decode_request(truncated)
        except ProtocolError:
            return
        # Fixed-size bodies cannot be cut without detection; only a put
        # whose value bytes happen to re-frame could legally decode, and
        # then only to a *different* put (never a crash).
        assert decoded[0] == op[0]

    @given(resp=RESPONSES, junk=st.binary(min_size=1, max_size=16))
    def test_trailing_garbage_rejected(self, resp, junk):
        payload = split_payload(encode_response(resp))
        if resp[0] == "error":
            return  # error bodies are free-form text by design
        try:
            decoded = decode_response(payload + junk)
        except ProtocolError:
            return
        # VALUE frames carry an explicit length; junk beyond it must not
        # silently extend the value.
        assert decoded != resp or resp[0] in ("value",)

    def test_unknown_request_tag_names_the_tag(self):
        with pytest.raises(ProtocolError, match="0x7f"):
            decode_request(bytes([0x7F]) + b"junk")

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"")
        with pytest.raises(ProtocolError):
            decode_response(b"")

    def test_frame_larger_than_limit_cannot_be_encoded(self):
        with pytest.raises(ProtocolError):
            frame(bytes(MAX_FRAME_BYTES + 1))

    @given(lo=KEYS, width=st.integers(1, 2**32))
    def test_inverted_delete_range_rejected_on_encode(self, lo, width):
        with pytest.raises(ProtocolError, match="delete_range"):
            encode_request(("delete_range", lo, lo - width))

    @given(lo=KEYS, width=st.integers(1, 2**32))
    def test_inverted_delete_range_raw_frame_rejected_on_decode(self, lo, width):
        """A hostile peer can still put lo > hi on the wire by writing
        the bytes directly; the decoder must refuse the frame."""
        payload = bytes([protocol.REQ_DELETE_RANGE]) + struct.pack(
            "<qq", lo, lo - width
        )
        with pytest.raises(ProtocolError, match="delete_range"):
            decode_request(payload)

    def test_empty_delete_range_is_legal_on_the_wire(self):
        """lo == hi encodes the empty interval — a valid no-op frame."""
        wire = encode_request(("delete_range", 5, 5))
        assert decode_request(split_payload(wire)) == ("delete_range", 5, 5)


class TestServerClosesOnProtocolError:
    """The live-server half of the adversarial contract."""

    def test_garbage_stream_gets_error_frame_then_close(self, tiny_config):
        import socket

        from repro.net.protocol import decode_response as dr
        from repro.shard.engine import ShardedEngine
        from repro.net.server import LetheServer

        cluster = ShardedEngine(tiny_config, n_shards=2)
        try:
            with LetheServer(cluster) as server:
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10
                ) as sock:
                    # Announce 512 MiB: the server must answer with an
                    # ERROR frame and hang up without allocating it.
                    sock.sendall(struct.pack("<I", 512 * 1024 * 1024))
                    chunks = b""
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        chunks += chunk
                    length = parse_length(chunks[:LENGTH_PREFIX_BYTES])
                    response = dr(chunks[LENGTH_PREFIX_BYTES:][:length])
                    assert response[0] == "error"
                assert server.protocol_errors == 1
        finally:
            cluster.close()

    def test_valid_requests_before_garbage_still_answered(self, tiny_config):
        import socket

        from repro.net.client import LetheClient
        from repro.shard.engine import ShardedEngine
        from repro.net.server import LetheServer

        cluster = ShardedEngine(tiny_config, n_shards=2)
        try:
            with LetheServer(cluster) as server:
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10
                ) as sock:
                    good = encode_request(("put", 5, b"kept", None))
                    bad = frame(bytes([0x7E]))  # unknown tag
                    sock.sendall(good + bad)
                    chunks = b""
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        chunks += chunk
                # Two frames came back: OK for the put, ERROR for the
                # garbage — pipelined order holds right up to the close.
                decoder = FrameDecoder()
                frames = decoder.feed(chunks)
                assert [decode_response(p)[0] for p in frames] == ["ok", "error"]
                # ...and the put really landed.
                with LetheClient("127.0.0.1", server.port) as client:
                    assert client.get(5) == b"kept"
        finally:
            cluster.close()

    def test_inverted_delete_range_frame_gets_error_then_close(
        self, tiny_config
    ):
        """A raw lo > hi DELETE_RANGE frame — unbuildable through the
        client codec — reaches the server's decoder and must be answered
        with ERROR and a hang-up, leaving earlier writes intact."""
        import socket

        from repro.net.client import LetheClient
        from repro.net.server import LetheServer
        from repro.shard.engine import ShardedEngine

        cluster = ShardedEngine(tiny_config, n_shards=2)
        try:
            with LetheServer(cluster) as server:
                with LetheClient("127.0.0.1", server.port) as client:
                    client.put(1, b"one")
                    client.put(2, b"two")
                    client.delete_range(2, 9)  # the valid spelling works
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10
                ) as sock:
                    body = bytes([protocol.REQ_DELETE_RANGE]) + struct.pack(
                        "<qq", 9, 2
                    )
                    sock.sendall(frame(body))
                    chunks = b""
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        chunks += chunk
                    length = parse_length(chunks[:LENGTH_PREFIX_BYTES])
                    response = decode_response(
                        chunks[LENGTH_PREFIX_BYTES:][:length]
                    )
                    assert response[0] == "error"
                    assert "delete_range" in response[1]
                assert server.protocol_errors == 1
                with LetheClient("127.0.0.1", server.port) as client:
                    assert client.get(1) == b"one"
                    assert client.get(2) is None  # the valid delete held
        finally:
            cluster.close()
